"""The §6 "Best Practices for CXL memory" advisor, made executable.

Given a declarative :class:`WorkloadProfile`, :func:`advise` emits the
paper's recommendations that apply, each tied to the section it came
from.  :func:`classify` implements §6.1's bandwidth-bound vs
latency-bound application categorization from a measured scaling curve.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from ..errors import WorkloadError
from .series import Series


class LatencyClass(enum.Enum):
    """Order-of-magnitude end-to-end latency of one request."""

    MICROSECONDS = "us"
    MILLISECONDS = "ms"
    SECONDS = "s"


@dataclass(frozen=True)
class WorkloadProfile:
    """What the advisor needs to know about an application."""

    name: str
    latency_class: LatencyClass
    read_fraction: float               # of memory traffic
    bulk_transfer_bytes: int = 0       # typical bulk move size (0 = none)
    writer_threads: int = 1
    short_term_reuse: bool = True      # will moved data be re-read soon?
    has_intermediate_compute: bool = False   # layers between user & memory

    def __post_init__(self) -> None:
        if not 0.0 <= self.read_fraction <= 1.0:
            raise WorkloadError(
                f"read_fraction out of range: {self.read_fraction}")
        if self.writer_threads < 0 or self.bulk_transfer_bytes < 0:
            raise WorkloadError("negative profile parameters")


@dataclass(frozen=True)
class Advice:
    """One applicable recommendation."""

    rule: str            # short identifier
    source: str          # paper section
    text: str

    def __str__(self) -> str:
        return f"[{self.rule}] ({self.source}) {self.text}"


def advise(profile: WorkloadProfile) -> list[Advice]:
    """All §6 recommendations applicable to ``profile``."""
    recommendations: list[Advice] = []

    if not profile.short_term_reuse:
        recommendations.append(Advice(
            "nt-store", "§6 / §4",
            "Use non-temporal stores or movdir64B when moving data "
            "from/to CXL memory: no RFO, no cache pollution.  Both are "
            "weakly ordered — fence before relying on visibility."))

    if profile.writer_threads > 2:
        recommendations.append(Advice(
            "limit-writers", "§6 / §4.3",
            f"Limit concurrent CXL writers (currently "
            f"{profile.writer_threads}): the device controller's buffer "
            "overflows past ~2 nt-store threads; funnel writes through a "
            "centralized stub or OS daemon."))

    if profile.bulk_transfer_bytes >= 4096:
        recommendations.append(Advice(
            "use-dsa", "§6 / §4.3.1",
            "Offload bulk movement (page-granularity, 4 KiB/2 MiB) to "
            "Intel DSA asynchronously with batching; it frees CPU cycles "
            "and exceeds instruction-based copies."))

    recommendations.append(Advice(
        "interleave", "§6 / §5",
        "Interleave memory across DRAM and CXL channels with NUMA "
        "policies to spread bandwidth load; tune the N:M ratio to the "
        "device's share of total bandwidth."))

    if profile.latency_class is LatencyClass.MICROSECONDS:
        recommendations.append(Advice(
            "avoid-pure-cxl", "§6 / §5.1",
            f"{profile.name} serves us-level requests: do NOT run it "
            "entirely on CXL memory — delayed accesses accumulate into "
            "2x tail-latency penalties (the Redis result).  Pin hot data "
            "to DRAM."))
    elif (profile.latency_class is LatencyClass.MILLISECONDS
          and profile.has_intermediate_compute):
        recommendations.append(Advice(
            "offload-to-cxl", "§6 / §5.3",
            f"{profile.name} is a good CXL-offload candidate: ms-level "
            "latency with intermediate computation amortizes the extra "
            "access latency (the DeathStarBench result).  Keep "
            "compute-intensive components on DRAM, offload caches and "
            "storage."))

    if (profile.read_fraction >= 0.8
            and profile.latency_class is not LatencyClass.MICROSECONDS):
        recommendations.append(Advice(
            "read-heavy-target", "§6",
            "Read-heavy traffic avoids the device's write-buffer "
            "limitations entirely — a favorable CXL profile."))

    return recommendations


def classify(scaling: Series, *, linear_tolerance: float = 0.10) -> str:
    """§6.1's categorization from a throughput-vs-threads curve.

    Returns ``"bandwidth-bound"`` when throughput goes sublinear beyond
    some thread count (the DLRM-on-SNC signature), ``"latency-bound"``
    when it stays linear but with a depressed slope relative to the
    curve's own start (the Redis signature is detected by the caller
    comparing schemes), and ``"not-bound"`` when linear throughout.
    """
    if len(scaling) < 3:
        raise WorkloadError("need at least 3 points to classify")
    slopes = [y / x for x, y in zip(scaling.x, scaling.y) if x > 0]
    if not slopes:
        raise WorkloadError("scaling curve needs positive thread counts")
    if min(slopes) < (1.0 - linear_tolerance) * slopes[0]:
        return "bandwidth-bound"
    return "not-bound"


def latency_bound_verdict(dram: Series, cxl: Series, *,
                          threshold: float = 1.15) -> bool:
    """True when a *small* CXL share already depresses throughput.

    §6.1: "Memory-latency-bounded applications will perceive throughput
    degrade even when a small amount of their working set is allocated
    to a higher-latency memory."  Compare same-thread-count curves.
    """
    if dram.x != cxl.x:
        raise WorkloadError("curves must share thread counts")
    ratios = [d / c for d, c in zip(dram.y, cxl.y) if c > 0]
    if not ratios:
        raise WorkloadError("empty scaling curves")
    return max(ratios) >= threshold
