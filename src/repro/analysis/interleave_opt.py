"""Interleave-ratio optimization for bandwidth-bound workloads.

§6: "Interleave memory using NUMA polices ... to evenly distribute the
memory load across all DRAM and CXL channels" — the load is distributed
*evenly* when each tier receives traffic proportional to the bandwidth
it can serve.  For a bandwidth-bound workload the optimal CXL page
fraction is therefore::

    f* = BW_cxl / (BW_dram + BW_cxl)

computed for the workload's actual access shape.  For latency-bound
workloads (Redis), the optimum is f* = 0 — interleaving only ever adds
latency, matching §5.1's finding that "none ... can surpass the
performance of running Redis purely on DRAM".
"""

from __future__ import annotations

from dataclasses import dataclass

from ..cpu.system import System
from ..errors import WorkloadError
from ..mem.dram import AccessPattern


@dataclass(frozen=True)
class InterleaveRecommendation:
    """The advisor's output for one workload shape."""

    cxl_fraction: float
    dram_bandwidth: float          # B/s, for the workload's shape
    cxl_bandwidth: float
    bandwidth_bound: bool

    @property
    def dram_to_cxl_ratio(self) -> tuple[int, int]:
        """The nearest small-integer N:M ratio for the kernel patch."""
        if self.cxl_fraction <= 0.0:
            return (1, 0)
        best = (1, 1)
        best_err = float("inf")
        for dram in range(1, 64):
            for cxl in range(1, 64):
                err = abs(cxl / (dram + cxl) - self.cxl_fraction)
                if err < best_err - 1e-12:
                    best, best_err = (dram, cxl), err
        return best


def bandwidth_matched_fraction(system: System, *,
                               pattern: AccessPattern,
                               block_bytes: int,
                               streams: int,
                               bandwidth_bound: bool = True
                               ) -> InterleaveRecommendation:
    """The §6 'evenly distribute the bandwidth' interleave fraction.

    ``bandwidth_bound=False`` models a latency-bound workload, for which
    the recommendation collapses to all-DRAM (§5.1).
    """
    if streams <= 0:
        raise WorkloadError("streams must be positive")
    dram_bw = system.backend_for_node(system.LOCAL_NODE).bus_ceiling(
        pattern, block_bytes, streams=streams)
    cxl_backend = system.backend_for_node(system.cxl_node_id)
    cxl_bw = (cxl_backend.bus_ceiling(pattern, block_bytes,
                                      streams=streams)
              * cxl_backend.concurrency_derate(readers=streams,
                                               writers=0))
    fraction = (cxl_bw / (dram_bw + cxl_bw)) if bandwidth_bound else 0.0
    return InterleaveRecommendation(cxl_fraction=fraction,
                                    dram_bandwidth=dram_bw,
                                    cxl_bandwidth=cxl_bw,
                                    bandwidth_bound=bandwidth_bound)
