"""DRAM device model: access pattern classes and per-device efficiency."""

from __future__ import annotations

import enum

from ..config import DramConfig
from .bandwidth import row_locality_efficiency


class AccessPattern(enum.Enum):
    """How requests walk the address space (MEMO's workload classes, §4.1)."""

    SEQUENTIAL = "sequential"
    RANDOM_BLOCK = "random-block"
    POINTER_CHASE = "pointer-chase"

    @property
    def is_random(self) -> bool:
        return self is not AccessPattern.SEQUENTIAL


class DramDevice:
    """One DRAM subsystem behind a memory controller.

    Wraps a :class:`~repro.config.DramConfig` with the two queries the
    rest of the model needs: device-side access latency and sustainable
    bandwidth for a given traffic shape.
    """

    def __init__(self, config: DramConfig) -> None:
        self.config = config

    @property
    def peak_bandwidth(self) -> float:
        """Theoretical peak across all channels, B/s."""
        return self.config.peak_bandwidth

    @property
    def channels(self) -> int:
        return self.config.channels

    def access_ns(self) -> float:
        """Unloaded device-side access time (row activate + CAS + transfer)."""
        return self.config.access_ns

    def efficiency(self, pattern: AccessPattern, block_bytes: int,
                   streams: int, *, write_fraction: float = 0.0) -> float:
        """Fraction of peak the device sustains for this traffic shape.

        ``streams`` is the number of independent request streams hitting
        the device.  Sequential streams pay no mixing penalty — a real
        iMC's per-bank queues reorder them back into row hits — but
        random-block streams interleave over the channels
        (``streams / channels`` per scheduler) and lose row locality.
        ``write_fraction`` of the bus traffic additionally pays the
        device's write-turnaround penalty.
        """
        if streams <= 0:
            raise ValueError(f"streams must be positive: {streams}")
        if not 0.0 <= write_fraction <= 1.0:
            raise ValueError(f"write_fraction out of range: {write_fraction}")
        if pattern is AccessPattern.POINTER_CHASE:
            base = self.config.random_efficiency
        else:
            if pattern is AccessPattern.SEQUENTIAL:
                run = 1 << 20   # effectively unbounded runs
                per_channel = 1.0
            else:
                run = block_bytes
                per_channel = streams / self.channels
            base = row_locality_efficiency(
                run, per_channel,
                sequential_eff=self.config.sequential_efficiency,
                random_eff=self.config.random_efficiency)
        return base * (1.0 - self.config.write_penalty * write_fraction)

    def sustained_bandwidth(self, pattern: AccessPattern, block_bytes: int,
                            streams: int, *,
                            write_fraction: float = 0.0) -> float:
        """Bandwidth the device sustains (B/s of *bus* traffic)."""
        return self.peak_bandwidth * self.efficiency(
            pattern, block_bytes, streams, write_fraction=write_fraction)
