"""The integrated memory controller: channels + address interleaving."""

from __future__ import annotations

from ..config import DramConfig
from ..telemetry import NULL_TELEMETRY, Telemetry
from .bandwidth import loaded_latency_ns
from .channel import Channel
from .dram import AccessPattern, DramDevice


class MemoryController:
    """Schedules a traffic mix over a :class:`DramDevice`'s channels.

    Addresses interleave across channels at cacheline granularity, so for
    any multi-line footprint the offered load divides evenly over
    channels.  The controller owns the device-side loaded-latency
    calculation used by the end-to-end perfmodel.
    """

    def __init__(self, config: DramConfig, *,
                 telemetry: Telemetry | None = None) -> None:
        self.config = config
        self.telemetry = telemetry if telemetry is not None \
            else NULL_TELEMETRY
        self.device = DramDevice(config)
        self.channels = [Channel(config, i) for i in range(config.channels)]

    @property
    def channel_count(self) -> int:
        return len(self.channels)

    def sustained_bandwidth(self, pattern: AccessPattern, block_bytes: int,
                            streams: int, *,
                            write_fraction: float = 0.0) -> float:
        """Max bus bandwidth (B/s) the controller sustains for this mix."""
        return self.device.sustained_bandwidth(
            pattern, block_bytes, streams, write_fraction=write_fraction)

    def utilization(self, offered_bytes_per_s: float,
                    pattern: AccessPattern = AccessPattern.SEQUENTIAL,
                    block_bytes: int = 1 << 20,
                    streams: int = 1) -> float:
        """Offered load relative to what this mix can sustain."""
        capacity = self.sustained_bandwidth(pattern, block_bytes, streams)
        return offered_bytes_per_s / capacity

    def loaded_access_ns(self, offered_bytes_per_s: float,
                         pattern: AccessPattern = AccessPattern.SEQUENTIAL,
                         block_bytes: int = 1 << 20,
                         streams: int = 1) -> float:
        """Device access latency inflated by controller-level queueing."""
        rho = self.utilization(offered_bytes_per_s, pattern, block_bytes,
                               streams)
        loaded = loaded_latency_ns(self.config.access_ns, rho)
        registry = self.telemetry.registry
        registry.counter("mem.controller.loaded_queries").inc()
        registry.gauge("mem.controller.utilization").set(rho)
        registry.histogram("mem.controller.loaded_ns").record(loaded)
        return loaded
