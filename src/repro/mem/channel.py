"""A single DRAM channel: the unit of bandwidth scaling in the paper.

Channel count is the paper's central explanation for why DDR5-L8 keeps
scaling while DDR5-R1 and the single-channel CXL device flatline
(§4.3.2: "The memory channel count plays a crucial role").
"""

from __future__ import annotations

from ..config import DramConfig
from .bandwidth import loaded_latency_ns


class Channel:
    """One channel of a DRAM subsystem with utilization-aware latency."""

    def __init__(self, config: DramConfig, index: int = 0) -> None:
        if index < 0 or index >= config.channels:
            raise ValueError(
                f"channel index {index} out of range for "
                f"{config.channels}-channel config")
        self.config = config
        self.index = index

    @property
    def peak_bandwidth(self) -> float:
        """This channel's share of the theoretical peak, B/s."""
        return self.config.per_channel_peak

    def utilization(self, offered_bytes_per_s: float) -> float:
        """Offered load as a fraction of the channel's peak."""
        if offered_bytes_per_s < 0:
            raise ValueError("offered load must be non-negative")
        return offered_bytes_per_s / self.peak_bandwidth

    def loaded_access_ns(self, offered_bytes_per_s: float) -> float:
        """Device access latency inflated by this channel's queueing."""
        return loaded_latency_ns(self.config.access_ns,
                                 self.utilization(offered_bytes_per_s))
