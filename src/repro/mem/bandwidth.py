"""Shared bandwidth/latency curves used by every memory backend.

Two effects dominate the paper's bandwidth plots:

1. **Queueing** — as offered load approaches a resource's capacity, the
   effective latency of each request inflates, which in a closed loop
   (fixed per-thread parallelism) caps throughput below the raw peak.
2. **Row locality** — DRAM sustains near-peak bandwidth only when
   consecutive requests hit open rows.  Small random blocks and many
   interleaved request streams both break locality; §4.3.1 notes that the
   CXL device's controller "received requests with fewer patterns as the
   thread count increased" and §4.3.2 shows 1 KiB random blocks hurting
   all three schemes equally.
"""

from __future__ import annotations

import math


def queueing_inflation(utilization: float, *, knee: float = 0.75,
                       max_factor: float = 8.0) -> float:
    """Latency inflation factor as a resource approaches saturation.

    A smooth M/M/1-flavoured curve: ~1.0 below ``knee`` utilization, then
    rising like ``1/(1-rho)`` and clipped at ``max_factor`` (real memory
    controllers apply backpressure rather than queueing unboundedly).

    >>> queueing_inflation(0.0)
    1.0
    >>> queueing_inflation(0.5) < queueing_inflation(0.9)
    True
    """
    if utilization < 0:
        raise ValueError(f"negative utilization: {utilization}")
    rho = min(utilization, 0.999)
    if rho <= knee:
        # Quadratic onset keeps the low-load region flat.
        return 1.0 + 0.15 * (rho / knee) ** 2
    excess = (rho - knee) / (1.0 - knee)
    factor = 1.15 + excess / (1.0 - rho)
    return min(factor, max_factor)


def row_locality_efficiency(block_bytes: int, streams_per_channel: float,
                            *, sequential_eff: float,
                            random_eff: float) -> float:
    """DRAM efficiency (fraction of theoretical peak) for blocked access.

    ``block_bytes`` is the contiguous run length of each request stream;
    ``streams_per_channel`` is how many independent streams a channel's
    scheduler must interleave.  Efficiency rises from ``random_eff`` (64 B
    scattered) toward ``sequential_eff`` (long runs), then is derated as
    stream count grows because interleaving streams reopens rows.
    """
    if block_bytes < 64:
        raise ValueError(f"block smaller than a cacheline: {block_bytes}")
    if streams_per_channel < 0:
        raise ValueError("stream count must be non-negative")
    if not 0 < random_eff <= sequential_eff <= 1:
        raise ValueError("need 0 < random_eff <= sequential_eff <= 1")

    # A DDR row is ~8 KiB (128 lines); runs beyond that gain nothing and
    # a single-line "run" (64 B) scores zero locality.
    run_score = min(1.0, math.log2(block_bytes / 64) / math.log2(128))
    base = random_eff + (sequential_eff - random_eff) * run_score

    # Stream mixing: each extra concurrent stream at the same channel
    # costs a few percent of locality, saturating at the random floor.
    mixing = 1.0 / (1.0 + 0.04 * max(0.0, streams_per_channel - 1.0))
    return max(random_eff, base * mixing)


def loaded_latency_ns(base_ns: float, utilization: float,
                      **kwargs) -> float:
    """Base latency inflated by queueing at ``utilization``."""
    if base_ns <= 0:
        raise ValueError(f"base latency must be positive: {base_ns}")
    return base_ns * queueing_inflation(utilization, **kwargs)
