"""Device-side memory models: DRAM timing, channels, and controllers.

This package answers device-side questions only — what latency and
sustained bandwidth the DIMMs and their controller can deliver for a given
traffic mix.  End-to-end numbers (adding core, cache, and interconnect
effects) are composed by :mod:`repro.perfmodel`.
"""

from .bandwidth import queueing_inflation, row_locality_efficiency
from .dram import AccessPattern, DramDevice
from .channel import Channel
from .controller import MemoryController
from .device import MemoryBackend
from .banks import Bank, DdrTimings, ddr4_2666_timings, ddr5_4800_timings
from .dram_sim import ChannelSimResult, DramChannelSim

__all__ = [
    "AccessPattern",
    "DramDevice",
    "Channel",
    "MemoryController",
    "MemoryBackend",
    "queueing_inflation",
    "row_locality_efficiency",
    "Bank",
    "DdrTimings",
    "ddr4_2666_timings",
    "ddr5_4800_timings",
    "DramChannelSim",
    "ChannelSimResult",
]
