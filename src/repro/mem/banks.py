"""DDR bank-level timing: the physics under ``row_locality_efficiency``.

The analytic layer uses calibrated efficiency constants (sequential
~0.72 of peak, random ~0.38).  This module models where those numbers
come from: JEDEC-style bank timing.  A bank holds one open row; a hit
costs CAS latency plus the burst, a miss adds precharge + activate, and
the four-activate window (tFAW) throttles how fast row misses can be
spread across banks — the first-order reason random 64 B traffic
sustains only a third of the pin rate.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import DeviceError


@dataclass(frozen=True)
class DdrTimings:
    """The timing subset that bounds bandwidth (all in ns)."""

    name: str
    transfer_mt_s: float
    banks: int
    trcd_ns: float      # activate -> column command
    trp_ns: float       # precharge
    tcl_ns: float       # CAS latency
    tras_ns: float      # activate -> precharge minimum
    tfaw_ns: float      # window for any four activates
    row_bytes: int = 8192

    def __post_init__(self) -> None:
        if self.transfer_mt_s <= 0 or self.banks <= 0:
            raise DeviceError("rate and banks must be positive")
        if min(self.trcd_ns, self.trp_ns, self.tcl_ns, self.tras_ns,
               self.tfaw_ns) < 0:
            raise DeviceError("timings must be non-negative")

    @property
    def burst_ns(self) -> float:
        """One BL8 burst (64 B over an 8-bit-beats x8-byte bus)."""
        return 8 / self.transfer_mt_s * 1e3

    @property
    def row_miss_penalty_ns(self) -> float:
        """Extra time a closed-row access pays: precharge + activate."""
        return self.trp_ns + self.trcd_ns

    @property
    def peak_bandwidth(self) -> float:
        """Pin-rate peak of one channel, B/s."""
        return self.transfer_mt_s * 1e6 * 8

    @property
    def lines_per_row(self) -> int:
        return self.row_bytes // 64


def ddr5_4800_timings() -> DdrTimings:
    """DDR5-4800 CL40-39-39 class timings."""
    return DdrTimings(name="DDR5-4800", transfer_mt_s=4800, banks=32,
                      trcd_ns=16.0, trp_ns=16.0, tcl_ns=16.6,
                      tras_ns=32.0, tfaw_ns=13.3)


def ddr4_2666_timings() -> DdrTimings:
    """DDR4-2666 CL19 class timings (the Agilex DIMM)."""
    return DdrTimings(name="DDR4-2666", transfer_mt_s=2666, banks=16,
                      trcd_ns=14.25, trp_ns=14.25, tcl_ns=14.25,
                      tras_ns=32.0, tfaw_ns=21.0)


class Bank:
    """One DRAM bank: an open row plus CAS/activate pipelining state.

    Column commands to an open row pipeline at tCCD (= one burst time),
    so a single-bank row-hit stream delivers data at the pin rate; the
    CAS latency is a pipeline *depth*, paid once per dependent request,
    not an occupancy.  Row changes serialize on precharge + activate
    with tRAS respected.
    """

    def __init__(self, timings: DdrTimings, index: int) -> None:
        self.timings = timings
        self.index = index
        self.open_row: int | None = None
        self.last_activate = -1e18
        self._next_cas_at = 0.0
        self.row_hits = 0
        self.row_misses = 0

    @property
    def busy_until(self) -> float:
        """When the bank can take the next column command."""
        return self._next_cas_at

    def access(self, row: int, now: float) -> tuple[float, bool]:
        """Issue one column access to ``row`` at/after ``now``.

        Returns ``(data_start_time, was_row_hit)``: the moment the burst
        may begin on the data bus (the caller serializes the bus).
        """
        hit = self.open_row == row
        if hit:
            self.row_hits += 1
            cas_at = max(now, self._next_cas_at)
        else:
            self.row_misses += 1
            activate_at = max(now, self._next_cas_at)
            if self.open_row is not None:
                # Respect tRAS before precharging the old row.
                activate_at = max(activate_at,
                                  self.last_activate
                                  + self.timings.tras_ns)
                activate_at += self.timings.trp_ns
            self.open_row = row
            self.last_activate = activate_at
            cas_at = activate_at + self.timings.trcd_ns
        self._next_cas_at = cas_at + self.timings.burst_ns
        data_at = cas_at + self.timings.tcl_ns
        return data_at, hit
