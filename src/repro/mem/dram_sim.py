"""A bank-accurate DRAM channel simulator.

Replays a line-address stream against :class:`~repro.mem.banks.Bank`
state machines with the three channel-level constraints that set real
efficiency:

* the shared data bus — one BL8 burst at a time;
* per-bank timing — row hits vs precharge+activate misses (tRAS held);
* the tFAW window — at most four activates per rolling window.

Its purpose is validation: the achieved-bandwidth ratios it produces for
sequential and random streams should bracket the calibrated
``sequential_efficiency`` / ``random_efficiency`` constants the analytic
layer uses (see tests/mem/test_dram_sim.py).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

import numpy as np

from ..errors import DeviceError
from ..sim.rng import substream
from .banks import Bank, DdrTimings


@dataclass(frozen=True)
class ChannelSimResult:
    """Outcome of one replayed request stream."""

    requests: int
    elapsed_ns: float
    row_hits: int
    row_misses: int

    @property
    def bandwidth(self) -> float:
        """Achieved B/s (64 B per request)."""
        if self.elapsed_ns <= 0:
            raise DeviceError("empty simulation window")
        return self.requests * 64 / (self.elapsed_ns / 1e9)

    @property
    def row_hit_rate(self) -> float:
        total = self.row_hits + self.row_misses
        return self.row_hits / total if total else 0.0

    def efficiency(self, timings: DdrTimings) -> float:
        """Achieved fraction of the channel's pin-rate peak."""
        return self.bandwidth / timings.peak_bandwidth


class DramChannelSim:
    """One channel: banks + shared bus + tFAW accounting."""

    def __init__(self, timings: DdrTimings) -> None:
        self.timings = timings
        self.banks = [Bank(timings, i) for i in range(timings.banks)]
        self._bus_free_at = 0.0
        self._activate_times: deque[float] = deque(maxlen=4)

    def _map(self, line: int) -> tuple[int, int]:
        """Line address -> (bank, row).

        Consecutive lines share a row within one bank (open-page
        mapping); rows then stripe across banks, which is what gives a
        single sequential stream bank-level pipelining across row
        boundaries.
        """
        lines_per_row = self.timings.lines_per_row
        row_index = line // lines_per_row
        bank = row_index % self.timings.banks
        row = row_index // self.timings.banks
        return bank, row

    def _respect_tfaw(self, activate_at: float) -> float:
        """Delay an activate so no window of four exceeds tFAW."""
        if len(self._activate_times) == 4:
            earliest = self._activate_times[0]
            activate_at = max(activate_at,
                              earliest + self.timings.tfaw_ns)
        self._activate_times.append(activate_at)
        return activate_at

    def replay(self, lines: np.ndarray) -> ChannelSimResult:
        """Run a line-address stream to completion."""
        if lines.size == 0:
            raise DeviceError("empty request stream")
        now = 0.0
        last_data_end = 0.0
        for line in lines:
            bank_index, row = self._map(int(line))
            bank = self.banks[bank_index]
            will_miss = bank.open_row != row
            if will_miss:
                now = self._respect_tfaw(now)
            data_at, _ = bank.access(row, now)
            # The shared data bus serializes bursts.
            burst_start = max(data_at, self._bus_free_at)
            self._bus_free_at = burst_start + self.timings.burst_ns
            last_data_end = self._bus_free_at
            # In-order front end: the next request can issue immediately
            # (bank-level parallelism comes from the per-bank horizons).
        hits = sum(b.row_hits for b in self.banks)
        misses = sum(b.row_misses for b in self.banks)
        return ChannelSimResult(requests=int(lines.size),
                                elapsed_ns=last_data_end,
                                row_hits=hits, row_misses=misses)

    # -- stream generators --------------------------------------------------

    @staticmethod
    def sequential_stream(num_lines: int) -> np.ndarray:
        if num_lines <= 0:
            raise DeviceError("num_lines must be positive")
        return np.arange(num_lines, dtype=np.int64)

    @staticmethod
    def random_stream(num_lines: int, *, footprint_lines: int,
                      seed: int = 23) -> np.ndarray:
        if num_lines <= 0 or footprint_lines <= 0:
            raise DeviceError("line counts must be positive")
        rng = substream(f"dram-sim-{seed}", seed)
        return rng.integers(0, footprint_lines, size=num_lines,
                            dtype=np.int64)

    @staticmethod
    def interleaved_streams(threads: int, *, lines_per_thread: int,
                            region_lines: int = 1 << 18) -> np.ndarray:
        """What the controller sees under multi-threaded streaming.

        Each thread walks its own distant region sequentially; requests
        arrive round-robin.  This is §4.3.1's closing observation made
        concrete: "the memory controller ... received requests with
        fewer patterns as the thread count increased" — consecutive
        requests land in different rows, and row locality collapses as
        threads multiply.
        """
        if threads <= 0 or lines_per_thread <= 0:
            raise DeviceError("threads and lines must be positive")
        # Stagger regions by one row each so streams start in different
        # banks (as virtual-to-physical mappings scatter them in
        # practice); contention appears once threads exceed banks.
        row_lines = 128
        streams = np.stack([
            np.arange(lines_per_thread, dtype=np.int64)
            + thread * (region_lines + row_lines)
            for thread in range(threads)])
        # Round-robin interleave: column-major flatten.
        return streams.T.reshape(-1)

    def measured_multistream_efficiency(self, threads: int, *,
                                        lines_per_thread: int = 2048
                                        ) -> float:
        """Achieved fraction of peak for ``threads`` interleaved streams."""
        stream = self.interleaved_streams(
            threads, lines_per_thread=lines_per_thread)
        return DramChannelSim(self.timings).replay(stream).efficiency(
            self.timings)

    # -- headline measurements -----------------------------------------------

    def measured_sequential_efficiency(self, num_lines: int = 8192
                                       ) -> float:
        return DramChannelSim(self.timings).replay(
            self.sequential_stream(num_lines)).efficiency(self.timings)

    def measured_random_efficiency(self, num_lines: int = 8192,
                                   footprint_lines: int = 1 << 20
                                   ) -> float:
        return DramChannelSim(self.timings).replay(
            self.random_stream(num_lines,
                               footprint_lines=footprint_lines)
        ).efficiency(self.timings)
