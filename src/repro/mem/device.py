"""The backend abstraction every memory scheme implements.

A :class:`MemoryBackend` is the device half of one of the paper's three
memory schemes (DDR5-L8, DDR5-R1, CXL).  It reports:

* ``label`` — the scheme name used in figures;
* ``idle_read_ns`` / ``idle_write_ns`` — unloaded device+path latency
  beyond the CPU socket boundary;
* ``read_ceiling`` / ``write_ceiling`` — per-direction bus-bandwidth
  ceilings for a traffic shape;
* ``concurrency_derate`` — device-specific degradation as a function of
  the number of writer/reader threads (the Agilex controller's behavior
  in §4.3.1 lives behind this hook; plain DRAM returns 1.0).
"""

from __future__ import annotations

from dataclasses import dataclass

from .controller import MemoryController
from .dram import AccessPattern


@dataclass
class MemoryBackend:
    """Device-side view of one memory scheme."""

    label: str
    controller: MemoryController
    # Extra one-way path latency beyond the socket (UPI hops, CXL stack).
    extra_read_ns: float = 0.0
    extra_write_ns: float = 0.0
    # A link ceiling if the path crosses one (UPI/PCIe); None = unlimited.
    link_bandwidth: float | None = None

    @property
    def channel_count(self) -> int:
        return self.controller.channel_count

    def idle_read_ns(self) -> float:
        """Unloaded read latency from the socket edge to data return."""
        return self.controller.config.access_ns + self.extra_read_ns

    def read_components_ns(self) -> tuple[tuple[str, float], ...]:
        """The read path decomposed into labeled span components.

        Components sum to :meth:`idle_read_ns` (up to float association
        order — span recorders close the sum with a residual).  Plain
        DRAM is all media; a remote path adds its interconnect hop as
        ``link``.  The CXL backend overrides this with the finer
        link/controller/media split the paper measures.
        """
        parts: tuple[tuple[str, float], ...] = ()
        if self.extra_read_ns > 0.0:
            parts += (("link", self.extra_read_ns),)
        return parts + (("media", self.controller.config.access_ns),)

    def idle_write_ns(self) -> float:
        """Unloaded posted-write acceptance latency."""
        return self.controller.config.access_ns + self.extra_write_ns

    def bus_ceiling(self, pattern: AccessPattern, block_bytes: int,
                    streams: int, *, write_fraction: float = 0.0) -> float:
        """Max total bus traffic (B/s), including any link ceiling."""
        device = self.controller.sustained_bandwidth(
            pattern, block_bytes, streams, write_fraction=write_fraction)
        if self.link_bandwidth is not None:
            return min(device, self.link_bandwidth)
        return device

    def concurrency_derate(self, *, readers: int, writers: int,
                           nt_writers: int = 0) -> float:
        """Multiplier in (0, 1] applied to the bus ceiling.

        Plain DRAM controllers handle many streams gracefully — channel
        interleaving is already captured by ``row_locality_efficiency`` —
        so the base implementation returns 1.0.  The CXL device overrides
        this (see :class:`repro.cxl.device.CxlMemoryBackend`).
        """
        del readers, writers, nt_writers
        return 1.0
