"""Golden regression pins: every shape-check verdict, every validation.

EXPERIMENTS.md records the paper-vs-measured story; these tests pin the
*executable* form of it — the exact claim text, verdict, and measured
string of every experiment shape check and every ``--validate``
cross-model check — against ``golden_checks.json``.  Any drift in a
reproduced number now fails loudly instead of silently shifting the
story.

After an intentional recalibration, regenerate with::

    REPRO_REGEN_GOLDEN=1 PYTHONPATH=src python -m pytest \
        tests/experiments/test_golden.py -q

and review the diff like any other source change.
"""

import json
import os
from pathlib import Path

import pytest

from repro import build_system, combined_testbed
from repro.experiments import run_all
from repro.validate import cross_validate

GOLDEN_PATH = Path(__file__).parent / "golden_checks.json"
REGEN = bool(os.environ.get("REPRO_REGEN_GOLDEN"))


def check_payload(checks) -> list[dict]:
    return [{"claim": check.claim, "passed": check.passed,
             "measured": check.measured} for check in checks]


@pytest.fixture(scope="session")
def current() -> dict:
    """One fast pass over everything: all experiments + --validate."""
    experiments = {result.experiment_id: check_payload(result.checks)
                   for result in run_all(fast=True)}
    validate = check_payload(
        cross_validate(build_system(combined_testbed())))
    return {"experiments": experiments, "validate": validate}


@pytest.fixture(scope="session")
def golden(current) -> dict:
    if REGEN:
        GOLDEN_PATH.write_text(
            json.dumps(current, indent=2, sort_keys=True) + "\n")
    if not GOLDEN_PATH.exists():
        pytest.fail(f"{GOLDEN_PATH} missing; regenerate with "
                    "REPRO_REGEN_GOLDEN=1")
    return json.loads(GOLDEN_PATH.read_text())


class TestGoldenExperiments:
    def test_same_experiment_set(self, current, golden):
        assert sorted(current["experiments"]) \
            == sorted(golden["experiments"])

    def test_every_check_verdict_pinned(self, current, golden):
        for eid, golden_checks in sorted(golden["experiments"].items()):
            assert current["experiments"][eid] == golden_checks, \
                f"{eid} shape checks drifted from golden_checks.json"

    def test_all_golden_checks_pass(self, golden):
        failing = [check["claim"]
                   for checks in golden["experiments"].values()
                   for check in checks if not check["passed"]]
        assert not failing, f"golden file records failures: {failing}"


class TestGoldenValidation:
    def test_cross_validation_pinned(self, current, golden):
        assert current["validate"] == golden["validate"]

    def test_all_validations_pass(self, golden):
        assert all(check["passed"] for check in golden["validate"])
