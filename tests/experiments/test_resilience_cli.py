"""``repro-experiments --resilience`` argument validation and wiring.

Bad specs and non-accepting experiments are usage errors (exit 2 with
the uniform ``available: [...]`` listing); a good spec flows through to
the cluster experiments and scenario runners.
"""

from repro.experiments.runner import main


def _run(tmp_path, monkeypatch, argv):
    monkeypatch.setenv("REPRO_LEDGER_PATH",
                       str(tmp_path / "runs.jsonl"))
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
    return main(argv + ["--no-checkpoint", "--no-progress"])


class TestValidation:
    def test_unknown_preset_is_exit_2_and_lists_available(
            self, tmp_path, monkeypatch, capsys):
        code = _run(tmp_path, monkeypatch,
                    ["--only", "figR", "--resilience", "turbo"])
        assert code == 2
        err = capsys.readouterr().err
        assert "bad --resilience spec" in err
        assert "available:" in err
        assert "hedged" in err

    def test_unknown_knob_is_exit_2(self, tmp_path, monkeypatch,
                                    capsys):
        code = _run(tmp_path, monkeypatch,
                    ["--only", "figR", "--resilience", "jitter-ns=5"])
        assert code == 2
        assert "bad --resilience spec" in capsys.readouterr().err

    def test_inactive_policy_is_exit_2(self, tmp_path, monkeypatch,
                                       capsys):
        code = _run(tmp_path, monkeypatch,
                    ["--only", "figR", "--resilience",
                     "deadline-ns=0"])
        assert code == 2
        assert "inactive" in capsys.readouterr().err

    def test_non_accepting_experiment_is_exit_2(self, tmp_path,
                                                monkeypatch, capsys):
        code = _run(tmp_path, monkeypatch,
                    ["fig3", "--resilience", "hedged"])
        assert code == 2
        err = capsys.readouterr().err
        assert "do not accept a resilience policy" in err
        assert "fig3" in err


class TestWiring:
    def test_policy_flows_into_a_scenario_run(self, tmp_path,
                                              monkeypatch, capsys):
        save = tmp_path / "out"
        code = _run(tmp_path, monkeypatch,
                    ["scn-steady-baseline", "--resilience",
                     "deadline-ns=400000", "--save", str(save)])
        assert code == 0
        capsys.readouterr()
        assert (save / "scn-steady-baseline.txt").exists()
