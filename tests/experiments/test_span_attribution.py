"""Spanned experiment runs: determinism, closure, and CLI wiring.

The acceptance bar for the span layer (docs/TELEMETRY.md): a spanned
``cluster-pooling`` run yields a per-component breakdown whose segment
sums close on the end-to-end totals, carries at least K tail exemplar
waterfalls, and is **byte-identical** between serial and ``--jobs 2``
— same contract for a declarative scenario.
"""

import json

import pytest

from repro.experiments.registry import REGISTRY
from repro.telemetry.spans import SpanConfig

SPAN_CONFIG = SpanConfig(exemplars=3)


def _payload(eid, jobs, span_config=SPAN_CONFIG):
    result = REGISTRY[eid].run(fast=True, jobs=jobs,
                               span_config=span_config)
    return result


class TestClusterPooling:
    @pytest.fixture(scope="class")
    def serial(self):
        return _payload("cluster-pooling", 1)

    def test_serial_equals_jobs2_byte_identical(self, serial):
        parallel = _payload("cluster-pooling", 2)
        dump = lambda r: json.dumps(r.to_dict(), sort_keys=True)  # noqa: E731
        assert dump(serial) == dump(parallel)
        assert serial.spans == parallel.spans

    def test_breakdown_closes_on_end_to_end(self, serial):
        for name, agg in serial.spans["points"].items():
            component_total = sum(
                slot["total_ns"] for slot in agg["components"].values())
            assert component_total == pytest.approx(
                agg["total_ns"], rel=1e-9), name

    def test_every_point_has_k_exemplars(self, serial):
        for agg in serial.spans["points"].values():
            expected = min(SPAN_CONFIG.exemplars, agg["requests"])
            assert len(agg["exemplars"]) == expected

    def test_rendered_includes_attribution_section(self, serial):
        assert "Tail attribution" in serial.rendered
        assert "Slowest trace" in serial.rendered

    def test_span_shape_checks_pass(self, serial):
        assert serial.passed
        claims = [check.claim for check in serial.checks]
        assert any("sum to end-to-end" in claim for claim in claims)
        assert any("slowest traces" in claim for claim in claims)

    def test_spans_off_result_has_no_spans_payload(self):
        result = REGISTRY["cluster-pooling"].run(fast=True)
        assert result.spans == {}
        assert "spans" not in result.to_dict()


class TestScenario:
    def test_serial_equals_jobs2_byte_identical(self):
        config = SpanConfig(exemplars=2, windows=4)
        serial = _payload("scn-bursty-traffic", 1, config)
        parallel = _payload("scn-bursty-traffic", 2, config)
        assert json.dumps(serial.to_dict(), sort_keys=True) \
            == json.dumps(parallel.to_dict(), sort_keys=True)
        assert serial.spans["points"]

    def test_windows_present_per_point(self):
        config = SpanConfig(exemplars=1, windows=4)
        result = _payload("scn-bursty-traffic", 1, config)
        for agg in result.spans["points"].values():
            assert len(agg["windows"]) == 4
            assert sum(w["requests"] for w in agg["windows"]) \
                == agg["requests"]


class TestRegistryGating:
    def test_non_span_experiment_refuses_span_config(self):
        from repro.errors import ExperimentError

        with pytest.raises(ExperimentError, match="span config"):
            REGISTRY["fig3"].run(fast=True, span_config=SPAN_CONFIG)

    def test_accepts_spans_detection(self):
        assert REGISTRY["cluster-pooling"].accepts_spans
        assert REGISTRY["cluster-degraded"].accepts_spans
        assert not REGISTRY["fig3"].accepts_spans


class TestCacheKeys:
    def test_span_config_folds_into_run_config(self):
        from repro.experiments.runner import run_config

        spans_off = run_config(True)
        spans_on = run_config(True, span_config=SPAN_CONFIG)
        assert "spans" not in spans_off
        assert spans_on["spans"] == SPAN_CONFIG.to_dict()
        assert run_config(True, span_config=SpanConfig(exemplars=9)) \
            != spans_on
