"""``repro-experiments --spans`` end to end: save files, ledger digest,
and argument validation (docs/TELEMETRY.md)."""

import json

from repro.experiments.runner import main
from repro.obs.ledger import read_ledger
from repro.telemetry.report import validate_chrome_trace


def _run(tmp_path, monkeypatch, argv):
    monkeypatch.setenv("REPRO_LEDGER_PATH",
                       str(tmp_path / "runs.jsonl"))
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
    return main(argv + ["--no-checkpoint", "--no-progress"])


class TestSaveAndLedger:
    def test_spanned_run_writes_span_files_and_digest(self, tmp_path,
                                                      monkeypatch,
                                                      capsys):
        save = tmp_path / "out"
        code = _run(tmp_path, monkeypatch,
                    ["scn-steady-baseline", "--spans", "k=2",
                     "--save", str(save)])
        assert code == 0
        capsys.readouterr()

        payload = json.loads(
            (save / "scn-steady-baseline.spans.json").read_text())
        assert payload["config"] == {"exemplars": 2, "windows": 0}
        assert payload["points"]
        for agg in payload["points"].values():
            assert len(agg["exemplars"]) == min(2, agg["requests"])

        trace = json.loads(
            (save / "scn-steady-baseline.spans.trace.json").read_text())
        validate_chrome_trace(trace)

        records = read_ledger(tmp_path / "runs.jsonl")
        assert records[-1]["spans"]["exemplars"] > 0
        assert len(records[-1]["spans"]["digest"]) == 12

    def test_spans_off_run_writes_no_span_files(self, tmp_path,
                                                monkeypatch, capsys):
        save = tmp_path / "out"
        code = _run(tmp_path, monkeypatch,
                    ["scn-steady-baseline", "--save", str(save)])
        assert code == 0
        capsys.readouterr()
        assert not list(save.glob("*.spans.json"))
        assert read_ledger(tmp_path / "runs.jsonl")[-1]["spans"] is None


class TestValidation:
    def test_bad_spec_is_exit_2(self, tmp_path, monkeypatch, capsys):
        code = _run(tmp_path, monkeypatch,
                    ["scn-steady-baseline", "--spans", "depth=3"])
        assert code == 2
        assert "bad --spans spec" in capsys.readouterr().err

    def test_non_accepting_experiment_is_exit_2(self, tmp_path,
                                                monkeypatch, capsys):
        code = _run(tmp_path, monkeypatch, ["fig3", "--spans"])
        assert code == 2
        err = capsys.readouterr().err
        assert "do not accept a span config" in err
        assert "fig3" in err
