"""The experiment registry and runner CLI."""

import pytest

from repro.errors import ExperimentError
from repro.experiments import REGISTRY, get
from repro.experiments.registry import ExperimentResult, register
from repro.experiments.runner import build_parser, main


class TestRegistry:
    def test_every_paper_artifact_is_registered(self):
        paper = {"table1", "fig2", "fig3", "fig4", "fig5", "fig6",
                 "fig7", "fig8", "fig9", "fig10"}
        named_extensions = {"degraded-cxl", "cluster-pooling",
                            "cluster-degraded", "cluster-resilient",
                            "cluster-retry-storm"}
        assert paper <= set(REGISTRY)
        extras = set(REGISTRY) - paper - named_extensions
        # ext- = hand-written extension experiments; scn- = declarative
        # scenario-pack experiments (docs/SCENARIOS.md).
        assert all(eid.startswith(("ext-", "scn-")) for eid in extras)

    def test_extension_experiments_registered(self):
        expected = {"ext-tiering", "ext-nearmem", "ext-pooling",
                    "ext-loaded-latency"}
        assert expected <= set(REGISTRY)

    def test_get_unknown_raises(self):
        with pytest.raises(ExperimentError):
            get("fig99")

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ExperimentError):
            register("fig2", "dup", "nowhere")(lambda fast: None)

    def test_metadata_present(self):
        for experiment in REGISTRY.values():
            assert experiment.title
            assert "§" in experiment.paper_ref or "Table" in \
                experiment.paper_ref


class TestResults:
    def test_result_render_contains_checks(self):
        result = ExperimentResult("x", "t", "body")
        assert "### x: t" in result.render()

    def test_passed_requires_all_checks(self):
        from repro.analysis.compare import ShapeCheck
        good = ShapeCheck("a", True, "1")
        bad = ShapeCheck("b", False, "2")
        assert ExperimentResult("x", "t", "", [good]).passed
        assert not ExperimentResult("x", "t", "", [good, bad]).passed


class TestCli:
    def test_list(self, capsys):
        assert main(["--list"]) == 0
        out = capsys.readouterr().out
        assert "fig3" in out and "table1" in out

    def test_run_single(self, capsys):
        assert main(["table1"]) == 0
        out = capsys.readouterr().out
        assert "Testbed configurations" in out
        assert "[PASS]" in out

    def test_parser_flags(self):
        args = build_parser().parse_args(["--full", "fig3"])
        assert args.full
        assert args.ids == ["fig3"]

    def test_save_writes_result_files(self, tmp_path, capsys):
        assert main(["table1", "--save", str(tmp_path)]) == 0
        capsys.readouterr()
        saved = tmp_path / "table1.txt"
        assert saved.exists()
        assert "[PASS]" in saved.read_text()

    def test_unknown_id_exits_with_clear_message(self, capsys):
        assert main(["fig99"]) == 2
        err = capsys.readouterr().err
        assert "unknown experiment id" in err
        assert "fig99" in err
        assert "fig3" in err            # lists what IS available

    def test_unknown_id_mixed_with_known_still_rejected(self, capsys):
        assert main(["table1", "nope"]) == 2
        assert "nope" in capsys.readouterr().err

    def test_bad_jobs_rejected(self, capsys):
        assert main(["--jobs", "0", "table1"]) == 2
        assert "--jobs" in capsys.readouterr().err

    def test_parser_parallel_flags(self):
        args = build_parser().parse_args(
            ["--jobs", "4", "--no-cache", "fig3"])
        assert args.jobs == 4
        assert args.no_cache

    def test_parser_only_flag_accumulates(self):
        args = build_parser().parse_args(
            ["--only", "figC", "--only", "figC-deg"])
        assert args.only == ["figC", "figC-deg"]
        assert args.ids == []

    def test_parser_faults_flag(self):
        args = build_parser().parse_args(
            ["--faults", "crc=0.01", "degraded-cxl"])
        assert args.faults == "crc=0.01"

    def test_figf_alias_runs_degraded_cxl(self, capsys):
        assert main(["figF", "--no-cache"]) == 0
        assert "degraded-cxl" in capsys.readouterr().out

    def test_bad_faults_spec_rejected(self, capsys):
        assert main(["degraded-cxl", "--faults", "bogus=1"]) == 2
        assert "bogus" in capsys.readouterr().err

    def test_faults_with_non_fault_experiment_rejected(self, capsys):
        assert main(["table1", "--faults", "crc=0.01"]) == 2
        assert "table1" in capsys.readouterr().err

    def test_clear_cache(self, tmp_path, monkeypatch, capsys):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        assert main(["table1"]) == 0            # populates one entry
        capsys.readouterr()
        assert main(["--clear-cache", "--list"]) == 0
        out = capsys.readouterr().out
        assert "cleared 1 cached result(s)" in out
        assert list(tmp_path.glob("*.json")) == []


class TestFastExperimentsPass:
    """Each paper artifact regenerates with all shape checks green.

    The DES-heavy studies (fig6/fig7/fig10) are covered end-to-end by
    their app test modules; here we run the cheap analytic ones.
    """

    @pytest.mark.parametrize("eid", ["table1", "fig2", "fig3", "fig4",
                                     "fig5", "fig8", "fig9"])
    def test_experiment_passes(self, eid):
        result = get(eid).run(fast=True)
        failing = [c for c in result.checks if not c.passed]
        assert not failing, "\n".join(str(c) for c in failing)
        assert result.rendered.strip()

    def test_fig6_fig7_fig10_pass(self):
        for eid in ("fig6", "fig7", "fig10"):
            result = get(eid).run(fast=True)
            failing = [c for c in result.checks if not c.passed]
            assert not failing, f"{eid}: " + "\n".join(
                str(c) for c in failing)

    @pytest.mark.parametrize("eid", ["ext-tiering", "ext-nearmem",
                                     "ext-pooling",
                                     "ext-loaded-latency"])
    def test_extension_experiment_passes(self, eid):
        result = get(eid).run(fast=True)
        failing = [c for c in result.checks if not c.passed]
        assert not failing, "\n".join(str(c) for c in failing)

    @pytest.mark.parametrize("eid", ["fig3", "fig7", "ext-nearmem"])
    def test_experiments_are_deterministic(self, eid):
        """Named RNG substreams: two runs render byte-identically."""
        first = get(eid).run(fast=True).render()
        second = get(eid).run(fast=True).render()
        assert first == second


class TestJsonExport:
    def test_to_dict_shape(self):
        from repro.analysis.compare import ShapeCheck
        result = ExperimentResult(
            "x", "t", "body", [ShapeCheck("claim", True, "1.0")],
            series={"panel": {"s": {"x": [1.0], "y": [2.0]}}})
        obj = result.to_dict()
        assert obj["experiment_id"] == "x"
        assert obj["passed"] is True
        assert obj["checks"] == [{"claim": "claim", "passed": True,
                                  "measured": "1.0"}]
        assert obj["series"]["panel"]["s"]["y"] == [2.0]

    def test_series_payload_from_report(self):
        from repro.analysis.series import Series
        from repro.experiments.registry import series_payload
        from repro.memo.report import BenchReport
        report = BenchReport(title="t")
        report.add_series("p", Series("a", [1.0, 2.0], [3.0, 4.0],
                                      x_label="threads",
                                      y_label="GB/s"))
        payload = series_payload(report)
        assert payload == {"p": {"a": {"x": [1.0, 2.0], "y": [3.0, 4.0],
                                       "x_label": "threads",
                                       "y_label": "GB/s"}}}

    def test_save_writes_json_next_to_txt(self, tmp_path, capsys):
        import json
        assert main(["table1", "--save", str(tmp_path)]) == 0
        capsys.readouterr()
        assert (tmp_path / "table1.txt").exists()
        obj = json.loads((tmp_path / "table1.json").read_text())
        assert obj["experiment_id"] == "table1"
        assert isinstance(obj["passed"], bool)
        assert all({"claim", "passed", "measured"} <= set(check)
                   for check in obj["checks"])
