"""End-to-end: crash-safe sweeps through the real CLIs.

Worker misbehavior is injected through the env-triggered fault hooks
in :mod:`repro.parallel.sweeps` (``REPRO_TEST_UNIT_*``), so these
tests drive the exact production paths: supervised fan-out, per-unit
failure summaries, cache quarantine, checkpoint journaling, and the
SIGINT drain → ``--resume`` round trip.
"""

import json
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

import repro
from repro.experiments.runner import main as experiments_main
from repro.memo.cli import main as memo_main
from repro.obs import read_ledger
from repro.experiments.runner import run_config
from repro.resilience import suite_hash

SRC_DIR = str(Path(repro.__file__).resolve().parent.parent)


@pytest.fixture
def sandbox(tmp_path, monkeypatch):
    """Isolated cache / ledger / checkpoint roots for one test."""
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
    monkeypatch.setenv("REPRO_LEDGER_PATH",
                       str(tmp_path / "runs.jsonl"))
    monkeypatch.setenv("REPRO_CHECKPOINT_DIR", str(tmp_path / "ckpt"))
    return tmp_path


class TestExperimentsFailures:
    def test_crashing_unit_exits_1_with_summary(self, sandbox,
                                                monkeypatch, capsys):
        monkeypatch.setenv("REPRO_TEST_UNIT_CRASH", "table1")
        rc = experiments_main(["fig2", "table1", "--jobs", "2",
                               "--no-cache", "--no-progress"])
        out = capsys.readouterr().out
        assert rc == 1
        assert "1 experiment(s) failed to produce a result" in out
        assert "table1: exception" in out
        assert "injected crash" in out
        # The healthy sibling still rendered.
        assert "[PASS]" in out

    def test_failure_recorded_in_ledger(self, sandbox, monkeypatch,
                                        capsys):
        monkeypatch.setenv("REPRO_TEST_UNIT_CRASH", "table1")
        rc = experiments_main(["table1", "--jobs", "2", "--no-cache",
                               "--no-progress"])
        capsys.readouterr()
        assert rc == 1
        (record,) = read_ledger()
        assert record["exit_code"] == 1
        failure = record["resilience"]["failures"]["table1"]
        assert failure["kind"] == "exception"
        verdict = record["verdicts"]["table1"]
        assert verdict["passed"] is False
        assert verdict["failed"] == "exception"

    def test_os_killed_worker_classified(self, sandbox, monkeypatch,
                                         capsys):
        monkeypatch.setenv("REPRO_TEST_UNIT_KILL", "table1")
        rc = experiments_main(["table1", "--jobs", "2", "--no-cache",
                               "--no-progress"])
        out = capsys.readouterr().out
        assert rc == 1
        assert "table1: killed" in out
        assert "exit 137" in out

    def test_hanging_unit_times_out(self, sandbox, monkeypatch,
                                    capsys):
        monkeypatch.setenv("REPRO_TEST_UNIT_HANG", "table1:30")
        start = time.monotonic()
        rc = experiments_main(["table1", "--jobs", "2", "--no-cache",
                               "--no-progress", "--unit-timeout", "1"])
        out = capsys.readouterr().out
        assert time.monotonic() - start < 25
        assert rc == 1
        assert "table1: timeout" in out

    def test_retry_recovers_flaky_unit(self, sandbox, monkeypatch,
                                       capsys):
        marker = sandbox / "flaky-marker"
        monkeypatch.setenv("REPRO_TEST_UNIT_FLAKY",
                           f"table1:{marker}")
        rc = experiments_main(["table1", "--jobs", "2", "--no-cache",
                               "--no-progress", "--retries", "2"])
        capsys.readouterr()
        assert rc == 0
        assert marker.exists()
        (record,) = read_ledger()
        assert record["resilience"]["retries"]["table1"] == 1
        assert record["resilience"]["failures"] == {}

    def test_failed_unit_written_to_save_dir(self, sandbox,
                                             monkeypatch, capsys):
        monkeypatch.setenv("REPRO_TEST_UNIT_CRASH", "table1")
        save = sandbox / "save"
        rc = experiments_main(["fig2", "table1", "--jobs", "2",
                               "--no-cache", "--no-progress",
                               "--save", str(save)])
        capsys.readouterr()
        assert rc == 1
        assert (save / "fig2.txt").exists()
        failed = json.loads((save / "table1.failed.json").read_text())
        assert failed["kind"] == "exception"
        assert not (save / "table1.txt").exists()

    def test_fail_fast_stops_sweep(self, sandbox, monkeypatch,
                                   capsys):
        monkeypatch.setenv("REPRO_TEST_UNIT_CRASH", "fig2")
        rc = experiments_main(["fig2", "fig3", "table1", "--jobs", "2",
                               "--no-cache", "--no-progress",
                               "--fail-fast"])
        capsys.readouterr()
        assert rc == 1
        (record,) = read_ledger()
        kinds = {unit: failure["kind"] for unit, failure
                 in record["resilience"]["failures"].items()}
        assert kinds["fig2"] == "exception"
        assert "cancelled" in kinds.values()

    def test_bad_flag_values_exit_2(self, sandbox, capsys):
        assert experiments_main(["table1", "--unit-timeout", "0"]) == 2
        assert experiments_main(["table1", "--retries", "-1"]) == 2
        assert experiments_main(["table1", "--resume",
                                 "--no-checkpoint"]) == 2
        capsys.readouterr()


class TestCacheQuarantineEndToEnd:
    def _corrupt(self, sandbox, mode):
        (entry,) = (sandbox / "cache").glob("*.json")
        if mode == "truncate":
            entry.write_text(entry.read_text()[:25])
        else:                                   # bit-flip the payload
            data = json.loads(entry.read_text())
            data["payload"]["rendered"] = \
                "X" + data["payload"]["rendered"][1:]
            entry.write_text(json.dumps(data))
        return entry.name[:-len(".json")]

    @pytest.mark.parametrize("mode", ["truncate", "bit-flip"])
    def test_corrupt_entry_recomputes_and_quarantines(
            self, sandbox, mode, capsys):
        assert experiments_main(["table1", "--no-progress"]) == 0
        baseline = capsys.readouterr().out
        key = self._corrupt(sandbox, mode)
        assert experiments_main(["table1", "--no-progress"]) == 0
        assert capsys.readouterr().out == baseline
        # Moved aside for post-mortem, not deleted.
        assert (sandbox / "cache" / "quarantine"
                / f"{key}.json").exists()
        records = read_ledger()
        assert records[-1]["resilience"]["quarantined"] == [key]
        # Recompute repopulated the entry: next run is a plain hit.
        assert experiments_main(["table1", "--no-progress"]) == 0
        capsys.readouterr()
        assert read_ledger()[-1]["cache"]["hits"] == ["table1"]

    def test_hang_plus_corrupt_cache_single_run(self, sandbox,
                                                monkeypatch, capsys):
        """The acceptance scenario: one sweep hitting both faults."""
        assert experiments_main(["fig2", "--no-progress"]) == 0
        capsys.readouterr()
        key = self._corrupt(sandbox, "truncate")
        monkeypatch.setenv("REPRO_TEST_UNIT_HANG", "table1:30")
        rc = experiments_main(["fig2", "table1", "--jobs", "2",
                               "--no-progress", "--unit-timeout", "1"])
        out = capsys.readouterr().out
        assert rc == 1
        assert "table1: timeout" in out
        record = read_ledger()[-1]
        assert record["resilience"]["quarantined"] == [key]
        assert record["resilience"]["failures"]["table1"]["kind"] \
            == "timeout"


class TestInterruptResume:
    def _env(self, sandbox, **extra):
        env = dict(os.environ)
        env["PYTHONPATH"] = SRC_DIR + os.pathsep \
            + env.get("PYTHONPATH", "")
        env["REPRO_CACHE_DIR"] = str(sandbox / "cache")
        env["REPRO_LEDGER_PATH"] = str(sandbox / "runs.jsonl")
        env["REPRO_CHECKPOINT_DIR"] = str(sandbox / "ckpt")
        env.update(extra)
        return env

    def test_sigint_drains_and_resume_is_byte_identical(self, sandbox,
                                                        capsys):
        ids = ["fig2", "table1", "fig3"]
        argv = ids + ["--jobs", "2", "--no-cache", "--no-progress"]
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro.experiments.runner"] + argv,
            env=self._env(sandbox,
                          REPRO_TEST_UNIT_HANG="table1:60"),
            stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True)
        journal = (sandbox / "ckpt"
                   / f"{suite_hash(ids, run_config(True))}.jsonl")
        deadline = time.monotonic() + 60
        # Wait until both quick units are journaled, then interrupt.
        while time.monotonic() < deadline:
            if journal.exists() \
                    and len(journal.read_text().splitlines()) >= 2:
                break
            time.sleep(0.1)
        else:
            proc.kill()
            pytest.fail("journal never accumulated the quick units")
        proc.send_signal(signal.SIGINT)
        out, err = proc.communicate(timeout=60)
        assert proc.returncode == 130
        assert out == ""                    # nothing on stdout
        assert "--resume" in err            # the printed hint
        assert journal.exists()

        resumed = subprocess.run(
            [sys.executable, "-m", "repro.experiments.runner"]
            + argv + ["--resume"],
            env=self._env(sandbox), capture_output=True, text=True,
            timeout=120)
        assert resumed.returncode == 0
        baseline = subprocess.run(
            [sys.executable, "-m", "repro.experiments.runner"] + ids
            + ["--no-cache", "--no-progress"],
            env=self._env(sandbox / "fresh"), capture_output=True,
            text=True, timeout=120)
        assert baseline.returncode == 0
        assert resumed.stdout == baseline.stdout
        # The journal is consumed by the successful resume.
        assert not journal.exists()

    def test_interrupted_ledger_record(self, sandbox):
        ids = ["table1"]
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro.experiments.runner"]
            + ids + ["--jobs", "2", "--no-cache", "--no-progress"],
            env=self._env(sandbox, REPRO_TEST_UNIT_HANG="table1:60"),
            stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True)
        time.sleep(2.0)                     # let the sweep spin up
        proc.send_signal(signal.SIGINT)
        proc.communicate(timeout=60)
        assert proc.returncode == 130
        (record,) = read_ledger(sandbox / "runs.jsonl")
        assert record["exit_code"] == 130
        assert record["resilience"]["interrupted"] is True


class TestMemoSupervision:
    def test_supervised_bw_matches_serial(self, sandbox, capsys):
        assert memo_main(["bw", "--threads", "1", "2",
                          "--no-ledger"]) == 0
        baseline = capsys.readouterr().out
        assert memo_main(["bw", "--threads", "1", "2", "--jobs", "2",
                          "--retries", "1", "--no-ledger"]) == 0
        assert capsys.readouterr().out == baseline

    def test_supervised_random_matches_serial(self, sandbox, capsys):
        args = ["random", "--threads", "1", "--blocks", "1024",
                "4096", "--no-ledger"]
        assert memo_main(args) == 0
        baseline = capsys.readouterr().out
        assert memo_main(args + ["--unit-timeout", "120"]) == 0
        assert capsys.readouterr().out == baseline

    def test_poisoned_units_exit_1_not_traceback(self, sandbox,
                                                 monkeypatch, capsys):
        monkeypatch.setenv("REPRO_TEST_UNIT_CRASH", "CXL-ld")
        rc = memo_main(["bw", "--threads", "1",
                        "--unit-timeout", "60"])
        captured = capsys.readouterr()
        assert rc == 1
        assert "memo bw failed" in captured.err
        assert "CXL-ld: exception" in captured.err
        records = read_ledger()
        assert records[-1]["exit_code"] == 1

    def test_retries_recover_flaky_memo_curve(self, sandbox,
                                              monkeypatch, capsys):
        marker = sandbox / "memo-flaky"
        monkeypatch.setenv("REPRO_TEST_UNIT_FLAKY",
                           f"CXL-ld:{marker}")
        # Serial baseline computes inline — no worker, no fault.
        assert memo_main(["bw", "--threads", "1", "2",
                          "--no-ledger"]) == 0
        baseline = capsys.readouterr().out
        assert not marker.exists()
        assert memo_main(["bw", "--threads", "1", "2", "--retries",
                          "2", "--jobs", "2", "--no-ledger"]) == 0
        assert capsys.readouterr().out == baseline

    def test_bad_unit_timeout_exits_2(self, sandbox, capsys):
        with pytest.raises(SystemExit) as excinfo:
            memo_main(["bw", "--unit-timeout", "0"])
        assert excinfo.value.code == 2
        capsys.readouterr()
