"""Property: resuming from ANY journaled prefix is byte-identical.

An interrupt can land between any two unit completions, so the journal
a ``--resume`` starts from can hold any subset of the sweep's units.
Whatever that subset is, the resumed run's stdout must match an
uninterrupted run byte-for-byte — resumed units replay from the
journal, the remainder recomputes, and the two sources must be
indistinguishable in the output.
"""

import contextlib
import functools
import io
import json
import os
import tempfile
from pathlib import Path
from unittest import mock

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.experiments.runner import main as experiments_main
from repro.experiments.runner import run_config
from repro.resilience import CheckpointJournal, suite_hash

IDS = ["fig2", "fig3", "table1"]
ARGS = IDS + ["--no-cache", "--no-progress", "--no-ledger"]


@contextlib.contextmanager
def _checkpoint_dir(root):
    previous = os.environ.get("REPRO_CHECKPOINT_DIR")
    os.environ["REPRO_CHECKPOINT_DIR"] = str(root)
    try:
        yield
    finally:
        if previous is None:
            os.environ.pop("REPRO_CHECKPOINT_DIR", None)
        else:
            os.environ["REPRO_CHECKPOINT_DIR"] = previous


def _run(argv):
    stdout = io.StringIO()
    with contextlib.redirect_stdout(stdout), \
            contextlib.redirect_stderr(io.StringIO()):
        rc = experiments_main(argv)
    return rc, stdout.getvalue()


def _journal_path(root):
    return Path(root) / f"{suite_hash(IDS, run_config(True))}.jsonl"


@functools.lru_cache(maxsize=1)
def _baseline():
    """(stdout, journal lines) of one uninterrupted run of IDS.

    ``discard`` is suppressed so the fully-populated journal survives
    the successful sweep — the raw material every subset is cut from.
    """
    root = tempfile.mkdtemp(prefix="resume-prop-baseline-")
    with _checkpoint_dir(root), \
            mock.patch.object(CheckpointJournal, "discard",
                              return_value=False):
        rc, out = _run(ARGS)
    assert rc == 0
    lines = _journal_path(root).read_text().splitlines()
    assert {json.loads(line)["unit"] for line in lines} == set(IDS)
    return out, tuple(lines)


@given(subset=st.sets(st.sampled_from(IDS)))
@settings(deadline=None, max_examples=8,
          suppress_health_check=[HealthCheck.too_slow])
def test_resume_from_any_journaled_subset_is_byte_identical(subset):
    baseline_out, lines = _baseline()
    root = tempfile.mkdtemp(prefix="resume-prop-")
    journal = _journal_path(root)
    journal.parent.mkdir(parents=True, exist_ok=True)
    kept = [line for line in lines
            if json.loads(line)["unit"] in subset]
    journal.write_text("".join(line + "\n" for line in kept))
    with _checkpoint_dir(root):
        rc, out = _run(ARGS + ["--resume"])
    assert rc == 0
    assert out == baseline_out


@given(subset=st.sets(st.sampled_from(IDS), min_size=1))
@settings(deadline=None, max_examples=6,
          suppress_health_check=[HealthCheck.too_slow])
def test_resume_tolerates_truncated_tail_record(subset):
    """A crash mid-append corrupts at most the last line; the resume
    simply reruns that unit and output stays byte-identical."""
    baseline_out, lines = _baseline()
    root = tempfile.mkdtemp(prefix="resume-prop-trunc-")
    journal = _journal_path(root)
    journal.parent.mkdir(parents=True, exist_ok=True)
    kept = [line for line in lines
            if json.loads(line)["unit"] in subset]
    text = "".join(line + "\n" for line in kept)
    journal.write_text(text[:-12])          # tear the final record
    with _checkpoint_dir(root):
        rc, out = _run(ARGS + ["--resume"])
    assert rc == 0
    assert out == baseline_out
