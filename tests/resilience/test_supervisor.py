"""SupervisedRunner: timeouts, retries, crash classification, drain."""

import os
import time
from pathlib import Path

import pytest

from repro.resilience import (
    FAILURE_KINDS,
    SupervisedRunner,
    SupervisionPolicy,
    UnitFailure,
)
from repro.resilience.supervisor import ResilienceError


def _square(n):
    return n * n


def _boom(n):
    raise ValueError(f"unit {n} boom")


def _boom_on_one(n):
    if n == 1:
        raise ValueError("unit 1 boom")
    return n * 10


def _die_silently(n):
    os._exit(99)


def _hang(n):
    time.sleep(60)
    return n


def _flaky_marker(marker):
    """Crash on the first call, succeed once the marker file exists."""
    path = Path(marker)
    if not path.exists():
        path.write_text("attempted\n")
        raise ValueError("first attempt")
    return "recovered"


class TestPolicy:
    def test_defaults_are_inert(self):
        policy = SupervisionPolicy()
        assert policy.timeout_s is None
        assert policy.retries == 0
        assert not policy.fail_fast

    def test_validation(self):
        with pytest.raises(ResilienceError):
            SupervisionPolicy(timeout_s=0)
        with pytest.raises(ResilienceError):
            SupervisionPolicy(timeout_s=-1.5)
        with pytest.raises(ResilienceError):
            SupervisionPolicy(retries=-1)
        with pytest.raises(ResilienceError):
            SupervisionPolicy(jitter=1.5)
        with pytest.raises(ResilienceError):
            SupervisionPolicy(backoff_base_s=-0.1)

    def test_backoff_is_deterministic(self):
        policy = SupervisionPolicy(retries=3, seed=7)
        assert policy.backoff_s(2, 1) == policy.backoff_s(2, 1)
        assert SupervisionPolicy(retries=3, seed=7).backoff_s(2, 1) \
            == policy.backoff_s(2, 1)

    def test_backoff_varies_by_unit_and_attempt(self):
        policy = SupervisionPolicy(retries=3)
        delays = {policy.backoff_s(index, attempt)
                  for index in range(4) for attempt in (1, 2)}
        assert len(delays) == 8

    def test_backoff_within_jitter_bounds_and_capped(self):
        policy = SupervisionPolicy(retries=8, backoff_base_s=0.05,
                                   backoff_cap_s=0.4, jitter=0.25)
        for attempt in range(1, 9):
            base = min(0.05 * 2 ** (attempt - 1), 0.4)
            delay = policy.backoff_s(0, attempt)
            assert base * 0.75 <= delay <= base * 1.25

    def test_backoff_attempt_must_be_positive(self):
        with pytest.raises(ResilienceError):
            SupervisionPolicy().backoff_s(0, 0)


class TestUnitFailure:
    def test_kind_must_be_known(self):
        with pytest.raises(ResilienceError):
            UnitFailure(index=0, unit="x", kind="melted", attempts=1)

    def test_str_carries_unit_kind_attempts_and_detail(self):
        failure = UnitFailure(index=0, unit="fig3", kind="killed",
                              attempts=2, message="worker died",
                              exit_code=137)
        text = str(failure)
        assert "fig3" in text and "killed" in text
        assert "2 attempt(s)" in text
        assert "exit 137" in text and "worker died" in text

    def test_to_dict_round_trips_fields(self):
        failure = UnitFailure(index=3, unit="fig5", kind="timeout",
                              attempts=1, message="exceeded 2s")
        data = failure.to_dict()
        assert data["unit"] == "fig5"
        assert data["kind"] == "timeout"
        assert data["exit_code"] is None

    def test_all_kinds_constructible(self):
        for kind in FAILURE_KINDS:
            UnitFailure(index=0, unit="x", kind=kind, attempts=1)


class TestInline:
    """jobs=1 with no timeout: the exact serial code path, wrapped."""

    def test_success_in_order(self):
        outcomes = SupervisedRunner(1).map(_square, [3, 1, 2])
        assert [o.value for o in outcomes] == [9, 1, 4]
        assert all(o.ok and o.attempts == 1 for o in outcomes)

    def test_exception_becomes_failure_not_raise(self):
        outcomes = SupervisedRunner(1).map(_boom_on_one, [0, 1, 2])
        assert outcomes[0].value == 0 and outcomes[2].value == 20
        assert not outcomes[1].ok
        assert outcomes[1].failure.kind == "exception"
        assert "unit 1 boom" in outcomes[1].failure.message

    def test_retries_recover_flaky_unit(self):
        calls = []

        def flaky(n):
            calls.append(n)
            if len(calls) == 1:
                raise ValueError("first attempt")
            return n

        policy = SupervisionPolicy(retries=2, backoff_base_s=0.001)
        outcomes = SupervisedRunner(1, policy=policy).map(flaky, [7])
        assert outcomes[0].ok and outcomes[0].value == 7
        assert outcomes[0].attempts == 2 and outcomes[0].retried == 1

    def test_retries_exhausted_reports_total_attempts(self):
        policy = SupervisionPolicy(retries=2, backoff_base_s=0.001)
        outcomes = SupervisedRunner(1, policy=policy).map(_boom, [4])
        assert outcomes[0].failure.attempts == 3

    def test_fail_fast_cancels_remainder(self):
        policy = SupervisionPolicy(fail_fast=True)
        outcomes = SupervisedRunner(1, policy=policy).map(
            _boom_on_one, [0, 1, 2, 3])
        assert outcomes[0].ok
        assert outcomes[1].failure.kind == "exception"
        assert [o.failure.kind for o in outcomes[2:]] \
            == ["cancelled", "cancelled"]

    def test_drain_marks_unstarted_units_interrupted(self):
        runner = SupervisedRunner(1)
        seen = []

        def fn(n):
            seen.append(n)
            if n == 0:
                runner.request_drain()
            return n

        outcomes = runner.map(fn, [0, 1, 2])
        assert seen == [0]
        assert outcomes[0].ok
        assert [o.failure.kind for o in outcomes[1:]] \
            == ["interrupted", "interrupted"]
        assert runner.drained

    def test_on_result_fires_per_success(self):
        landed = []
        runner = SupervisedRunner(
            1, on_result=lambda i, v: landed.append((i, v)))
        runner.map(_boom_on_one, [0, 1, 2])
        assert landed == [(0, 0), (2, 20)]

    def test_names_label_failures(self):
        outcomes = SupervisedRunner(1, names=["alpha"]).map(_boom, [1])
        assert outcomes[0].failure.unit == "alpha"

    def test_empty_input(self):
        assert SupervisedRunner(4).map(_square, []) == []

    def test_jobs_validation(self):
        with pytest.raises(ResilienceError):
            SupervisedRunner(0)


class TestSubprocess:
    """jobs>1 (or any timeout): process-per-unit supervision."""

    def test_parallel_matches_serial(self):
        serial = SupervisedRunner(1).map(_square, list(range(8)))
        parallel = SupervisedRunner(3).map(_square, list(range(8)))
        assert [o.value for o in parallel] == [o.value for o in serial]

    def test_exception_classified(self):
        outcomes = SupervisedRunner(2).map(_boom_on_one, [0, 1, 2])
        assert outcomes[0].value == 0 and outcomes[2].value == 20
        assert outcomes[1].failure.kind == "exception"
        assert "ValueError" in outcomes[1].failure.message

    def test_silent_death_classified_as_killed(self):
        outcomes = SupervisedRunner(2).map(_die_silently, [0])
        failure = outcomes[0].failure
        assert failure.kind == "killed"
        assert failure.exit_code == 99

    def test_hang_killed_at_timeout(self):
        policy = SupervisionPolicy(timeout_s=0.5)
        start = time.monotonic()
        outcomes = SupervisedRunner(1, policy=policy).map(_hang, [0])
        assert time.monotonic() - start < 10
        assert outcomes[0].failure.kind == "timeout"
        assert "0.5" in outcomes[0].failure.message

    def test_timeout_forces_subprocess_mode_even_serial(self):
        # jobs=1 with a timeout cannot run inline (nothing could kill
        # the unit), so values must still come back correct.
        policy = SupervisionPolicy(timeout_s=30)
        outcomes = SupervisedRunner(1, policy=policy).map(
            _square, [2, 3])
        assert [o.value for o in outcomes] == [4, 9]

    def test_retry_recovers_flaky_worker(self, tmp_path):
        policy = SupervisionPolicy(retries=1, backoff_base_s=0.001)
        outcomes = SupervisedRunner(2, policy=policy).map(
            _flaky_marker, [str(tmp_path / "marker")])
        assert outcomes[0].ok and outcomes[0].value == "recovered"
        assert outcomes[0].retried == 1

    def test_fail_fast_cancels_pending(self):
        policy = SupervisionPolicy(timeout_s=30, fail_fast=True)
        outcomes = SupervisedRunner(1, policy=policy).map(
            _boom_on_one, [1, 0, 2])
        assert outcomes[0].failure.kind == "exception"
        assert {o.failure.kind for o in outcomes[1:]} == {"cancelled"}

    def test_drain_terminates_hung_worker(self):
        runner = SupervisedRunner(
            1, policy=SupervisionPolicy(timeout_s=30))

        def progress(event, index, total, **kwargs):
            if event == "started":
                runner.request_drain()

        runner.progress = progress
        start = time.monotonic()
        outcomes = runner.map(_hang, [0, 1])
        assert time.monotonic() - start < 10
        assert {o.failure.kind for o in outcomes} == {"interrupted"}

    def test_progress_events_stream(self):
        events = []

        def progress(event, index, total, **kwargs):
            events.append((event, index))

        policy = SupervisionPolicy(timeout_s=30)
        SupervisedRunner(1, policy=policy,
                         progress=progress).map(_square, [5])
        assert ("started", 0) in events
        assert ("finished", 0) in events

    def test_on_result_fires_as_units_land(self):
        landed = []
        SupervisedRunner(
            2, on_result=lambda i, v: landed.append((i, v))).map(
            _square, [2, 3])
        assert sorted(landed) == [(0, 4), (1, 9)]
