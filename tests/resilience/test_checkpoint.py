"""Checkpoint journals: suite addressing, durability, tolerant loads."""

import json

import pytest

from repro.resilience import CheckpointJournal, checkpoint_dir, suite_hash
from repro.resilience.supervisor import ResilienceError


class TestSuiteHash:
    def test_stable(self):
        assert suite_hash(["a", "b"], {"fast": True}, version="v") \
            == suite_hash(["a", "b"], {"fast": True}, version="v")

    def test_sensitive_to_id_order(self):
        # The journal stores results for *this* sweep; a reordered id
        # list is a different sweep with different output ordering.
        assert suite_hash(["a", "b"], {}, version="v") \
            != suite_hash(["b", "a"], {}, version="v")

    def test_sensitive_to_config(self):
        assert suite_hash(["a"], {"fast": True}, version="v") \
            != suite_hash(["a"], {"fast": False}, version="v")

    def test_sensitive_to_version(self):
        assert suite_hash(["a"], {}, version="v1") \
            != suite_hash(["a"], {}, version="v2")

    def test_default_version_is_source_fingerprint(self):
        from repro.parallel import package_fingerprint

        assert suite_hash(["a"], {}) \
            == suite_hash(["a"], {}, version=package_fingerprint())

    def test_empty_ids_rejected(self):
        with pytest.raises(ResilienceError):
            suite_hash([], {})


class TestCheckpointDir:
    def test_env_var_overrides_default(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CHECKPOINT_DIR", str(tmp_path))
        assert checkpoint_dir() == tmp_path

    def test_explicit_root_wins(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CHECKPOINT_DIR", str(tmp_path / "env"))
        assert checkpoint_dir(tmp_path / "arg") == tmp_path / "arg"


class TestJournal:
    def journal(self, tmp_path, suite="s" * 64):
        return CheckpointJournal(suite, root=tmp_path)

    def test_record_then_load_round_trips(self, tmp_path):
        journal = self.journal(tmp_path)
        journal.record("fig3", {"rendered": "x", "value": 1.25})
        journal.record("fig5", {"rendered": "y"})
        assert journal.load() == {"fig3": {"rendered": "x",
                                           "value": 1.25},
                                  "fig5": {"rendered": "y"}}
        assert len(journal) == 2

    def test_missing_journal_loads_empty(self, tmp_path):
        assert self.journal(tmp_path).load() == {}
        assert not self.journal(tmp_path).exists()

    def test_last_record_wins_for_duplicate_unit(self, tmp_path):
        journal = self.journal(tmp_path)
        journal.record("fig3", {"v": 1})
        journal.record("fig3", {"v": 2})
        assert journal.load() == {"fig3": {"v": 2}}

    def test_truncated_tail_line_drops_that_unit_only(self, tmp_path):
        journal = self.journal(tmp_path)
        journal.record("a", {"v": 1})
        journal.record("b", {"v": 2})
        text = journal.path.read_text()
        journal.path.write_text(text[:-10])   # cut into b's record
        assert journal.load() == {"a": {"v": 1}}

    def test_bit_flipped_payload_fails_checksum(self, tmp_path):
        journal = self.journal(tmp_path)
        journal.record("a", {"v": 1})
        journal.record("b", {"v": 2})
        lines = journal.path.read_text().splitlines()
        entry = json.loads(lines[0])
        entry["payload"]["v"] = 999          # flip without re-checksum
        lines[0] = json.dumps(entry, sort_keys=True,
                              separators=(",", ":"))
        journal.path.write_text("\n".join(lines) + "\n")
        assert journal.load() == {"b": {"v": 2}}

    def test_unknown_schema_lines_skipped(self, tmp_path):
        journal = self.journal(tmp_path)
        journal.record("a", {"v": 1})
        with journal.path.open("a") as handle:
            handle.write('{"schema": 99, "unit": "z", "payload": {}}\n')
        assert journal.load() == {"a": {"v": 1}}

    def test_discard_removes_and_is_idempotent(self, tmp_path):
        journal = self.journal(tmp_path)
        journal.record("a", {"v": 1})
        assert journal.discard() is True
        assert not journal.exists()
        assert journal.discard() is False

    def test_suite_name_validation(self, tmp_path):
        with pytest.raises(ResilienceError):
            CheckpointJournal("", root=tmp_path)
        with pytest.raises(ResilienceError):
            CheckpointJournal("../escape", root=tmp_path)

    def test_empty_unit_id_rejected(self, tmp_path):
        with pytest.raises(ResilienceError):
            self.journal(tmp_path).record("", {})
