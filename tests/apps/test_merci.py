"""MERCI memoization: worth more when embeddings live on CXL."""

import pytest

from repro.apps.dlrm import DlrmInferenceStudy
from repro.apps.dlrm.merci import MerciMemoization
from repro.config import combined_testbed
from repro.errors import WorkloadError


@pytest.fixture(scope="module")
def study():
    return DlrmInferenceStudy(combined_testbed())


class TestAccounting:
    def test_lookup_split(self, study):
        merci = MerciMemoization(study.kernel("cxl"), memo_hit_rate=0.4)
        assert merci.table_lookups == pytest.approx(256 * 0.6)
        assert merci.memo_lookups == pytest.approx(256 * 0.4)

    def test_table_traffic_scales_with_miss_rate(self, study):
        kernel = study.kernel("cxl")
        merci = MerciMemoization(kernel, memo_hit_rate=0.5)
        assert merci.bytes_per_inference_on_tables() == pytest.approx(
            kernel.bytes_per_inference * 0.5)

    def test_zero_hit_rate_matches_baseline(self, study):
        kernel = study.kernel("cxl")
        merci = MerciMemoization(kernel, memo_hit_rate=0.0)
        assert merci.service_ns_per_inference() == pytest.approx(
            kernel.service_ns_per_inference())
        assert merci.throughput(8) == pytest.approx(kernel.throughput(8),
                                                    rel=0.01)

    def test_validation(self, study):
        kernel = study.kernel("cxl")
        with pytest.raises(WorkloadError):
            MerciMemoization(kernel, memo_hit_rate=1.0)
        with pytest.raises(WorkloadError):
            MerciMemoization(kernel, memo_table_bytes=0)
        with pytest.raises(WorkloadError):
            MerciMemoization(kernel).throughput(0)


class TestSpeedups:
    def test_memoization_helps(self, study):
        """Modest in the latency-bound region (dense compute dominates),
        large once the kernel is bandwidth-bound."""
        merci = MerciMemoization(study.kernel("cxl"), memo_hit_rate=0.35)
        for threads in (1, 8):
            assert merci.speedup(threads) > 1.05
        assert merci.speedup(32) > 1.3

    def test_helps_cxl_more_than_dram(self, study):
        """Each memo hit converts a ~390 ns CXL gather into a ~106 ns
        DRAM read — the saving is larger when tables are offloaded."""
        cxl_gain = MerciMemoization(study.kernel("cxl"),
                                    memo_hit_rate=0.35).speedup(8)
        dram_gain = MerciMemoization(study.kernel("local"),
                                     memo_hit_rate=0.35).speedup(8)
        assert cxl_gain > dram_gain

    def test_lifts_the_bandwidth_plateau(self, study):
        """At 32 threads the CXL kernel is bandwidth-bound; memoization
        removes table traffic and raises the plateau proportionally."""
        kernel = study.kernel("cxl")
        merci = MerciMemoization(kernel, memo_hit_rate=0.5)
        assert merci.bandwidth_bound(32) == pytest.approx(
            kernel.bandwidth_bound(32) * 2.0, rel=0.01)

    def test_higher_hit_rate_more_speedup(self, study):
        kernel = study.kernel("cxl")
        gains = [MerciMemoization(kernel, memo_hit_rate=rate).speedup(8)
                 for rate in (0.2, 0.4, 0.6)]
        assert gains == sorted(gains)
