"""Extension features: inline acceleration (§6) and device pooling (§5.2)."""

import pytest

from repro import build_system
from repro.apps.dlrm import DlrmInferenceStudy
from repro.apps.dlrm.nearmem import NearMemoryReduction
from repro.config import combined_testbed, pooled_cxl_testbed
from repro.errors import ConfigError, WorkloadError
from repro.topology import MemoryKind


@pytest.fixture(scope="module")
def study():
    return DlrmInferenceStudy(combined_testbed())


@pytest.fixture(scope="module")
def nearmem(study):
    return NearMemoryReduction(study.kernel("cxl"))


class TestNearMemoryReduction:
    def test_requires_cxl_resident_tables(self, study):
        with pytest.raises(WorkloadError):
            NearMemoryReduction(study.kernel("local"))
        with pytest.raises(WorkloadError):
            NearMemoryReduction(study.kernel(0.5))

    def test_link_traffic_collapses(self, nearmem):
        """Indices down + pooled vector back vs full rows: ~28x less."""
        assert nearmem.link_traffic_reduction() > 20

    def test_offload_beats_host_gather(self, nearmem):
        for threads in (1, 8, 32):
            assert nearmem.speedup_over_host_gather(threads) > 1.2

    def test_accel_latency_hidden_end_to_end(self, nearmem):
        """§6: the accelerator's extra latency 'will not be visible from
        an end-to-end point of view'."""
        assert nearmem.accel_latency_hidden(threads=16)

    def test_accel_latency_visible_single_inference(self, nearmem):
        """...but one unpipelined inference does pay ACCEL_LATENCY_NS."""
        from repro.apps.dlrm.nearmem import ACCEL_LATENCY_NS
        assert nearmem.single_inference_latency_ns() > ACCEL_LATENCY_NS

    def test_device_bound_caps_throughput(self, nearmem):
        assert nearmem.throughput(32) == pytest.approx(
            min(32 * 1e9 / nearmem.host_service_ns(),
                nearmem.device_bound()))

    def test_zero_threads_rejected(self, nearmem):
        with pytest.raises(WorkloadError):
            nearmem.throughput(0)


class TestPooledDevices:
    def test_pooled_config_has_n_devices(self):
        config = pooled_cxl_testbed(3)
        assert len(config.cxl_devices) == 3

    def test_zero_devices_rejected(self):
        with pytest.raises(ConfigError):
            pooled_cxl_testbed(0)

    def test_each_device_is_a_numa_node(self):
        system = build_system(pooled_cxl_testbed(2))
        assert len(system.topology.cxl_nodes) == 2
        for node in system.topology.cxl_nodes:
            assert node.kind is MemoryKind.CXL
            assert node.is_cpuless

    def test_pool_placement_spreads_tables(self):
        study = DlrmInferenceStudy(pooled_cxl_testbed(2))
        kernel = study.kernel("cxl-pool")
        fractions = kernel.tables.node_fractions()
        cxl_shares = [share for node, share in fractions.items()
                      if node >= 1]
        assert len(cxl_shares) == 2
        assert all(share == pytest.approx(0.5, abs=0.01)
                   for share in cxl_shares)

    def test_pooling_scales_bandwidth_bound(self):
        """§5.2's anticipation: more aggregate CXL bandwidth lifts
        bandwidth-bound throughput."""
        bounds = {}
        for devices in (1, 2, 4):
            study = DlrmInferenceStudy(pooled_cxl_testbed(devices))
            bounds[devices] = study.kernel(
                "cxl-pool").bandwidth_bound(32)
        assert bounds[2] == pytest.approx(2 * bounds[1], rel=0.05)
        assert bounds[4] == pytest.approx(4 * bounds[1], rel=0.05)

    def test_pooling_does_not_change_latency_class(self):
        """Pooling adds bandwidth, not lower latency — the per-thread
        slope stays the same."""
        one = DlrmInferenceStudy(pooled_cxl_testbed(1)).kernel("cxl-pool")
        four = DlrmInferenceStudy(pooled_cxl_testbed(4)).kernel("cxl-pool")
        assert one.service_ns_per_inference() == pytest.approx(
            four.service_ns_per_inference(), rel=0.01)
