"""Redis-YCSB study: placement, service model, DES server, Fig 6/7 shapes."""

import numpy as np
import pytest

from repro import build_system, combined_testbed
from repro.apps.kvstore import KvServer, KvStore, RedisYcsbStudy
from repro.errors import WorkloadError
from repro.topology import Membind
from repro.workloads import WORKLOADS, Operation


@pytest.fixture(scope="module")
def system():
    return build_system(combined_testbed())


@pytest.fixture(scope="module")
def study(system):
    # 200k x ~1.2 KiB records: the keyspace dwarfs the LLC, as in the
    # paper's setup (uniform requests "ensuring maximal stress on the
    # memory").
    return RedisYcsbStudy(system, num_keys=200_000)


class TestStorePlacement:
    def test_membind_dram(self, study):
        store = study.build_store(WORKLOADS["A"], 0.0)
        assert store.cxl_resident_fraction() == 0.0

    def test_membind_cxl(self, study):
        store = study.build_store(WORKLOADS["A"], 1.0)
        assert store.cxl_resident_fraction() == 1.0

    def test_half_interleave(self, study):
        store = study.build_store(WORKLOADS["A"], 0.5)
        assert store.cxl_resident_fraction() == pytest.approx(0.5, abs=0.01)

    def test_paper_ratio_3_23(self, study):
        store = study.build_store(WORKLOADS["A"], 1 / 31)
        assert store.cxl_resident_fraction() == pytest.approx(0.0323,
                                                              abs=0.002)

    def test_bad_fraction_rejected(self, study):
        with pytest.raises(WorkloadError):
            study.policy_for_fraction(1.5)

    def test_record_node_mix_sums_to_one(self, study):
        store = study.build_store(WORKLOADS["A"], 0.5)
        mix = store.record_node_mix(123)
        assert sum(mix.values()) == pytest.approx(1.0)


class TestServiceModel:
    def test_cxl_queries_slower(self, study):
        dram = study.build_store(WORKLOADS["A"], 0.0)
        cxl = study.build_store(WORKLOADS["A"], 1.0)
        assert cxl.mean_service_ns() > dram.mean_service_ns()

    def test_interleave_between_extremes(self, study):
        dram = study.build_store(WORKLOADS["A"], 0.0).mean_service_ns()
        half = study.build_store(WORKLOADS["A"], 0.5).mean_service_ns()
        cxl = study.build_store(WORKLOADS["A"], 1.0).mean_service_ns()
        assert dram < half < cxl

    def test_updates_cost_more_than_reads(self, system):
        store = KvStore(system, Membind(0), workload=WORKLOADS["A"],
                        num_keys=10_000, rng=np.random.default_rng(0))
        reads = np.mean([store.sample_service_ns(Operation.READ, 5)
                         for _ in range(500)])
        updates = np.mean([store.sample_service_ns(Operation.UPDATE, 5)
                           for _ in range(500)])
        assert updates > reads

    def test_latest_distribution_caches_better(self, study):
        """Fig 7 D-variants: lat > zipf > uni in cache friendliness."""
        d = WORKLOADS["D"]
        hit = {dist: study.build_store(d.with_distribution(dist),
                                       1.0).cache_hit_prob
               for dist in ("latest", "zipfian", "uniform")}
        assert hit["latest"] >= hit["zipfian"] > hit["uniform"]

    def test_out_of_range_key_rejected(self, study):
        store = study.build_store(WORKLOADS["A"], 0.0)
        with pytest.raises(WorkloadError):
            store.record_offset(10**9)


class TestMaxQps:
    """Fig 7 anchors: ~80k DRAM, ~65k at 50%, ~55k pure CXL."""

    def test_dram_near_80k(self, study):
        qps = study.max_qps(WORKLOADS["A"], 0.0)
        assert qps == pytest.approx(80_000, rel=0.08)

    def test_pure_cxl_near_55k(self, study):
        qps = study.max_qps(WORKLOADS["A"], 1.0)
        assert qps == pytest.approx(55_000, rel=0.08)

    def test_half_cxl_near_65k(self, study):
        qps = study.max_qps(WORKLOADS["A"], 0.5)
        assert qps == pytest.approx(65_000, rel=0.08)

    def test_less_cxl_more_qps(self, study):
        """Fig 7: 'having less memory allocated to CXL memory delivers a
        higher max QPS across all tested workloads'."""
        for name in ("A", "B", "C"):
            workload = WORKLOADS[name]
            values = [study.max_qps(workload, f)
                      for f in (1.0, 0.5, 0.1, 1 / 31, 0.0)]
            assert values == sorted(values)

    def test_nothing_beats_pure_dram(self, study):
        """'none of which can surpass the performance of running Redis
        purely on DRAM'."""
        dram = study.max_qps(WORKLOADS["A"], 0.0)
        for fraction in (1 / 31, 0.1, 0.5, 1.0):
            assert study.max_qps(WORKLOADS["A"], fraction) < dram

    def test_d_lat_beats_zipf_beats_uni(self, study):
        d = WORKLOADS["D"]
        lat = study.max_qps(d.with_distribution("latest"), 1.0)
        zipf = study.max_qps(d.with_distribution("zipfian"), 1.0)
        uni = study.max_qps(d.with_distribution("uniform"), 1.0)
        assert lat > zipf > uni

    def test_fig7_table_structure(self, study):
        table = study.max_qps_table(cxl_fractions=[0.0, 1.0],
                                    workload_names=["A", "D"])
        assert set(table) == {"A", "D-lat", "D-zipf", "D-uni"}


class TestDesServer:
    def test_p99_gap_at_low_qps(self, study):
        """Fig 6: 'a significant gap in p99 tail latency at low QPS
        (20k) when Redis runs purely on CXL memory' (~2x)."""
        dram = study.p99_point(WORKLOADS["A"], 0.0, 20_000,
                               requests=6000)
        cxl = study.p99_point(WORKLOADS["A"], 1.0, 20_000,
                              requests=6000)
        assert 1.5 <= cxl.p99_ns / dram.p99_ns <= 3.5

    def test_half_cxl_p99_between(self, study):
        """Fig 6: 50% CXL p99 sits between pure DRAM and pure CXL."""
        results = {f: study.p99_point(WORKLOADS["A"], f, 30_000,
                                      requests=6000).p99_ns
                   for f in (0.0, 0.5, 1.0)}
        assert results[0.0] < results[0.5] < results[1.0]

    def test_cxl_saturates_before_dram(self, study):
        """Fig 6: CXL Redis cannot reach the QPS DRAM Redis sustains."""
        qps = 70_000
        dram = study.p99_point(WORKLOADS["A"], 0.0, qps, requests=8000)
        cxl = study.p99_point(WORKLOADS["A"], 1.0, qps, requests=8000)
        assert cxl.p99_ns > 3 * dram.p99_ns

    def test_des_validates_analytic_capacity(self, study):
        """The DES server keeps up just below the analytic max QPS and
        falls behind just above it."""
        capacity = study.max_qps(WORKLOADS["A"], 1.0)
        below = study.p99_point(WORKLOADS["A"], 1.0, capacity * 0.85,
                                requests=8000)
        above = study.p99_point(WORKLOADS["A"], 1.0, capacity * 1.3,
                                requests=8000)
        assert not below.saturated
        assert above.saturated or above.p99_ns > 10 * below.p99_ns

    def test_invalid_qps_rejected(self, study):
        with pytest.raises(WorkloadError):
            study.p99_point(WORKLOADS["A"], 0.0, 0.0)

    def test_achieved_tracks_target_under_capacity(self, study):
        result = study.p99_point(WORKLOADS["A"], 0.0, 10_000,
                                 requests=4000)
        assert result.achieved_qps == pytest.approx(10_000, rel=0.1)


class TestInserts:
    """Workload D's 5% inserts grow the keyspace during the run."""

    def test_insert_grows_keyspace(self, system):
        store = KvStore(system, Membind(0), workload=WORKLOADS["D"],
                        num_keys=1000, capacity_keys=1100,
                        rng=np.random.default_rng(0))
        try:
            key = store.insert_record()
            assert key == 1000
            assert store.num_keys == 1001
            store.record_offset(key)          # addressable now
        finally:
            store.free()

    def test_capacity_exhaustion_raises(self, system):
        store = KvStore(system, Membind(0), workload=WORKLOADS["D"],
                        num_keys=10, capacity_keys=11,
                        rng=np.random.default_rng(0))
        try:
            store.insert_record()
            with pytest.raises(WorkloadError):
                store.insert_record()
        finally:
            store.free()

    def test_capacity_below_keys_rejected(self, system):
        with pytest.raises(WorkloadError):
            KvStore(system, Membind(0), workload=WORKLOADS["D"],
                    num_keys=10, capacity_keys=5)

    def test_workload_d_run_performs_inserts(self, system):
        store = KvStore(system, Membind(0), workload=WORKLOADS["D"],
                        num_keys=20_000,
                        rng=np.random.default_rng(0))
        try:
            KvServer(store).run(30_000, requests=4000)
            # ~5% of 4000 operations inserted new records.
            inserted = store.num_keys - 20_000
            assert inserted == pytest.approx(200, abs=60)
        finally:
            store.free()

    def test_latest_reads_follow_the_inserts(self, system):
        """After a D run, the chooser favors the newly inserted tail."""
        store = KvStore(system, Membind(0), workload=WORKLOADS["D"],
                        num_keys=20_000,
                        rng=np.random.default_rng(0))
        try:
            KvServer(store).run(30_000, requests=4000)
            rng = np.random.default_rng(1)
            keys = [store.chooser.next_key(rng) for _ in range(500)]
            assert np.median(keys) > 0.9 * store.num_keys
        finally:
            store.free()


class TestMemcachedVariant:
    """§6.1: memcached (threaded) is latency-bound just like Redis."""

    def run_with_workers(self, study, fraction, qps, workers,
                         requests=5000):
        store = study.build_store(WORKLOADS["A"], fraction)
        try:
            return KvServer(store, workers=workers).run(
                qps, requests=requests)
        finally:
            store.free()

    def test_workers_raise_saturation(self, study):
        """Four workers keep up where one thread drowns."""
        qps = 150_000
        one = self.run_with_workers(study, 0.0, qps, workers=1)
        four = self.run_with_workers(study, 0.0, qps, workers=4)
        assert four.achieved_qps > one.achieved_qps

    def test_cxl_penalty_survives_threading(self):
        """More workers do not shrink the per-query CXL latency gap —
        the §6.1 latency-bound signature."""
        from repro import build_system, combined_testbed
        study = RedisYcsbStudy(build_system(combined_testbed()),
                               num_keys=200_000)
        dram = self.run_with_workers(study, 0.0, 30_000, workers=4)
        cxl = self.run_with_workers(study, 1.0, 30_000, workers=4)
        assert cxl.mean_service_ns > 1.3 * dram.mean_service_ns

    def test_zero_workers_rejected(self, study):
        store = study.build_store(WORKLOADS["A"], 0.0)
        try:
            with pytest.raises(WorkloadError):
                KvServer(store, workers=0)
        finally:
            store.free()
