"""DeathStarBench social network: Fig 10 shapes."""

import pytest

from repro import build_system, combined_testbed
from repro.apps.dsb import (
    DsbRunner,
    RequestType,
    ServiceStage,
    SocialNetwork,
    memory_breakdown,
)
from repro.apps.dsb.socialnet import COMPONENTS, MIXED_WORKLOAD
from repro.apps.dsb.service import StageRuntime
from repro.errors import WorkloadError


@pytest.fixture(scope="module")
def system():
    return build_system(combined_testbed())


@pytest.fixture(scope="module")
def dram_net(system):
    return SocialNetwork(system, database_node=system.LOCAL_NODE)


@pytest.fixture(scope="module")
def cxl_net(system):
    return SocialNetwork(system, database_node=system.cxl_node_id)


class TestComponents:
    def test_only_databases_are_pinnable(self):
        pinnable = {name for name, stage in COMPONENTS.items()
                    if stage.pinnable}
        assert pinnable == {"cache", "storage"}

    def test_compute_cannot_be_pinned_to_cxl(self, system):
        with pytest.raises(WorkloadError):
            StageRuntime(COMPONENTS["nginx"], system,
                         system.cxl_node_id)

    def test_bad_stage_parameters_rejected(self):
        with pytest.raises(WorkloadError):
            ServiceStage("x", workers=0, cpu_ns=1.0, mem_lines=1,
                         resident_bytes=1)

    def test_mixed_workload_matches_paper(self):
        """'60% read-home-timeline, 30% read-user-timeline, and 10%
        composing-post'."""
        assert MIXED_WORKLOAD[RequestType.READ_HOME_TIMELINE] == 0.60
        assert MIXED_WORKLOAD[RequestType.READ_USER_TIMELINE] == 0.30
        assert MIXED_WORKLOAD[RequestType.COMPOSE_POST] == 0.10


class TestLatencyStructure:
    def test_latencies_are_ms_level(self, dram_net):
        """§5.3: 'the tail latency in DSB is at the millisecond level'."""
        for request in RequestType:
            assert dram_net.mean_latency_ns(request) > 0.5e6

    def test_compose_heaviest_on_databases(self, dram_net):
        """'composing posts involve more database operations'."""
        compose = dram_net.database_load_ns(RequestType.COMPOSE_POST)
        user = dram_net.database_load_ns(RequestType.READ_USER_TIMELINE)
        assert compose > 3 * user

    def test_home_timeline_skips_storage(self, dram_net):
        """'reading home timeline ... does not operate on the
        databases' (beyond the cache)."""
        stages = [stage.stage.name for stage, _ in
                  dram_net.recipe(RequestType.READ_HOME_TIMELINE)]
        assert "storage" not in stages

    def test_compose_gap_visible_user_timeline_not(self, dram_net,
                                                   cxl_net):
        """Fig 10: 'a tail latency difference in the case of composing
        posts, while there is little to no difference in the case of
        reading user timeline'."""
        def gap(request):
            dram = dram_net.mean_latency_ns(request)
            cxl = cxl_net.mean_latency_ns(request)
            return cxl / dram - 1.0

        assert gap(RequestType.COMPOSE_POST) > 0.12
        assert gap(RequestType.READ_USER_TIMELINE) < 0.08

    def test_mixed_saturation_similar(self, dram_net, cxl_net):
        """'the overall saturation point is similar to running the
        database on DDR5-L8'."""
        dram = dram_net.saturation_qps(MIXED_WORKLOAD)
        cxl = cxl_net.saturation_qps(MIXED_WORKLOAD)
        assert cxl == pytest.approx(dram, rel=0.35)


class TestForkJoin:
    """Compose-post overlaps its ML inference with the database writes."""

    def test_critical_path_below_serial_work(self, dram_net):
        compose = RequestType.COMPOSE_POST
        assert dram_net.zero_load_latency_ns(compose) < \
            dram_net.mean_latency_ns(compose)

    def test_read_paths_are_sequential(self, dram_net):
        for request in (RequestType.READ_USER_TIMELINE,
                        RequestType.READ_HOME_TIMELINE):
            assert dram_net.zero_load_latency_ns(request) == \
                pytest.approx(dram_net.mean_latency_ns(request))

    def test_parallel_group_names_real_stages(self):
        from repro.apps.dsb.socialnet import COMPONENTS, PARALLEL_GROUPS
        for group in PARALLEL_GROUPS.values():
            assert group <= set(COMPONENTS)

    def test_des_p99_tracks_critical_path_not_serial_sum(self, system,
                                                         dram_net):
        runner = DsbRunner(system, database_node=system.LOCAL_NODE)
        result = runner.run(200, mix={RequestType.COMPOSE_POST: 1.0},
                            requests=1200)
        compose = RequestType.COMPOSE_POST
        critical = dram_net.zero_load_latency_ns(compose) / 1e6
        serial = dram_net.mean_latency_ns(compose) / 1e6
        # p99 (with jitter + light queueing) sits above the critical
        # path but below what a fully serialized chain would cost.
        assert critical < result.p99_ms < serial * 1.6

    def test_cxl_gap_survives_parallelism(self, dram_net, cxl_net):
        compose = RequestType.COMPOSE_POST
        gap = (cxl_net.zero_load_latency_ns(compose)
               / dram_net.zero_load_latency_ns(compose))
        assert gap > 1.12


class TestBreakdown:
    def test_fractions_sum_to_one(self):
        assert sum(memory_breakdown().values()) == pytest.approx(1.0)

    def test_databases_dominate_memory(self):
        """The pinned components hold most of the footprint — the paper's
        premise for offloading them."""
        breakdown = memory_breakdown()
        assert breakdown["storage"] + breakdown["cache"] > 0.6


class TestDesRuns:
    def test_compose_p99_gap_under_load(self, system):
        dram = DsbRunner(system, database_node=system.LOCAL_NODE)
        cxl = DsbRunner(system, database_node=system.cxl_node_id)
        mix = {RequestType.COMPOSE_POST: 1.0}
        dram_p99 = dram.run(400, mix=mix, requests=1500).p99_ms
        cxl_p99 = cxl.run(400, mix=mix, requests=1500).p99_ms
        assert cxl_p99 > 1.1 * dram_p99

    def test_user_timeline_p99_similar(self, system):
        dram = DsbRunner(system, database_node=system.LOCAL_NODE)
        cxl = DsbRunner(system, database_node=system.cxl_node_id)
        mix = {RequestType.READ_USER_TIMELINE: 1.0}
        dram_p99 = dram.run(400, mix=mix, requests=1500).p99_ms
        cxl_p99 = cxl.run(400, mix=mix, requests=1500).p99_ms
        assert cxl_p99 == pytest.approx(dram_p99, rel=0.15)

    def test_mixed_run_completes(self, system):
        runner = DsbRunner(system, database_node=system.cxl_node_id)
        result = runner.run(300, requests=1200)
        assert result.requests == 1200
        assert result.p99_ms > result.mean_ms

    def test_overload_is_detected(self, system):
        runner = DsbRunner(system, database_node=system.cxl_node_id)
        saturation = runner.network.saturation_qps(MIXED_WORKLOAD)
        result = runner.run(saturation * 2.0, requests=2500)
        assert result.saturated or result.p99_ms > 20.0

    def test_bad_mix_rejected(self, system):
        runner = DsbRunner(system, database_node=system.LOCAL_NODE)
        with pytest.raises(WorkloadError):
            runner.run(100, mix={RequestType.COMPOSE_POST: 0.5})

    def test_zero_qps_rejected(self, system):
        runner = DsbRunner(system, database_node=system.LOCAL_NODE)
        with pytest.raises(WorkloadError):
            runner.run(0.0)

    def test_p99_curve_labels_database_tier(self, system):
        dram = DsbRunner(system, database_node=system.LOCAL_NODE)
        cxl = DsbRunner(system, database_node=system.cxl_node_id)
        dram_curve = dram.p99_curve([200.0], requests=400)
        cxl_curve = cxl.p99_curve(
            [200.0], request_type=RequestType.COMPOSE_POST, requests=400)
        assert dram_curve.name == "mixed@dram-local"
        assert cxl_curve.name == "compose-post@cxl"
        assert len(dram_curve) == 1
