"""The KvServer Lindley fast path must replay the DES byte-for-byte.

``workers == 1`` collapses the capacity-1 FIFO station to the Lindley
recursion (no event queue); ``REPRO_KV_FASTPATH=0`` forces the engine.
Every RunResult field — and the telemetry registry the run leaves
behind — must be *exactly* equal between the two, because experiment
payloads are cached content-addressed and compared byte-for-byte.
"""

import pytest

from repro import build_system, combined_testbed
from repro.apps.kvstore import KvServer, RedisYcsbStudy
from repro.telemetry import Telemetry
from repro.workloads import WORKLOADS

REQUESTS = 2_000
QPS = 50_000.0


@pytest.fixture(scope="module")
def study():
    return RedisYcsbStudy(build_system(combined_testbed()),
                          num_keys=10_000)


def _run(study, monkeypatch, *, fastpath: bool, workload="A",
         fraction=0.5, telemetry=None, workers=1):
    if fastpath:
        monkeypatch.delenv("REPRO_KV_FASTPATH", raising=False)
    else:
        monkeypatch.setenv("REPRO_KV_FASTPATH", "0")
    store = study.build_store(WORKLOADS[workload], fraction)
    try:
        server = KvServer(store, seed=study.seed, workers=workers,
                          telemetry=telemetry)
        return server.run(QPS, requests=REQUESTS)
    finally:
        store.free()


class TestEquivalence:
    @pytest.mark.parametrize("workload", ["A", "B", "D"])
    @pytest.mark.parametrize("fraction", [0.0, 0.5, 1.0])
    def test_fastpath_equals_des_exactly(self, study, monkeypatch,
                                         workload, fraction):
        fast = _run(study, monkeypatch, fastpath=True,
                    workload=workload, fraction=fraction)
        des = _run(study, monkeypatch, fastpath=False,
                   workload=workload, fraction=fraction)
        assert fast == des                 # every field, exact floats

    def test_registry_parity(self, study, monkeypatch):
        """Metrics-only telemetry sees identical gauges either way."""
        readings = []
        for fastpath in (True, False):
            telemetry = Telemetry.metrics_only()
            _run(study, monkeypatch, fastpath=fastpath,
                 telemetry=telemetry)
            registry = telemetry.registry
            readings.append({
                name: registry.gauge(name).value
                for name in ("sim.engine.events_processed",
                             "sim.engine.now_ns",
                             "apps.kvstore.p99_sojourn_ns",
                             "apps.kvstore.achieved_qps")
            })
        assert readings[0] == readings[1]


def _explode(self, target_qps, requests):
    raise AssertionError("fast path taken")


class TestGating:
    def test_multi_worker_skips_the_fast_path(self, study, monkeypatch):
        """workers > 1 has real queueing concurrency — no fast path."""
        monkeypatch.setattr(KvServer, "_run_fast", _explode)
        result = _run(study, monkeypatch, fastpath=True, workers=2)
        assert result.requests == REQUESTS

    def test_single_worker_takes_the_fast_path(self, study,
                                               monkeypatch):
        monkeypatch.setattr(KvServer, "_run_fast", _explode)
        with pytest.raises(AssertionError, match="fast path"):
            _run(study, monkeypatch, fastpath=True)

    def test_env_zero_forces_des_even_single_worker(self, study,
                                                    monkeypatch):
        monkeypatch.setenv("REPRO_KV_FASTPATH", "0")
        telemetry = Telemetry.metrics_only()
        store = study.build_store(WORKLOADS["A"], 0.5)
        try:
            KvServer(store, seed=study.seed,
                     telemetry=telemetry).run(QPS, requests=100)
        finally:
            store.free()
        # The DES schedules one arrival event plus one finish event per
        # request; the fast path would have *set* exactly 200 as well,
        # so distinguish via the trace-free engine having really run:
        # its events_processed gauge comes from Engine.run's finally.
        assert telemetry.registry.gauge(
            "sim.engine.events_processed").value == 200


class TestSpanGating:
    """Span recording opts into the DES; spans-off keeps the fast path.

    The tracing layer must cost nothing when disabled: the default
    NULL_SPANS recorder leaves the ``workers == 1`` gate exactly as it
    was (pinned by :class:`TestGating` above), while an enabled
    recorder needs real event interleaving and therefore the engine.
    """

    def test_spans_enabled_forces_des(self, study, monkeypatch):
        from repro.telemetry import SpanRecorder

        monkeypatch.setattr(KvServer, "_run_fast", _explode)
        telemetry = Telemetry(spans=SpanRecorder())
        result = _run(study, monkeypatch, fastpath=True,
                      telemetry=telemetry)
        assert result.requests == REQUESTS
        export = telemetry.spans.export()
        assert export["requests"] == REQUESTS

    def test_spanned_run_result_matches_plain_des(self, study,
                                                  monkeypatch):
        """Recording spans must not perturb a single RunResult float."""
        from repro.telemetry import SpanRecorder

        telemetry = Telemetry(spans=SpanRecorder())
        spanned = _run(study, monkeypatch, fastpath=True,
                       telemetry=telemetry)
        plain = _run(study, monkeypatch, fastpath=False)
        assert spanned == plain

    def test_service_components_close_on_service_total(self, study,
                                                       monkeypatch):
        """kv.cpu + mem.* segments sum to the mean-service total —
        client.wait is the only segment outside the service time."""
        from repro.telemetry import SpanRecorder

        telemetry = Telemetry(spans=SpanRecorder())
        result = _run(study, monkeypatch, fastpath=True,
                      telemetry=telemetry)
        agg = telemetry.spans.export()
        service_total = sum(
            slot["total_ns"]
            for name, slot in agg["components"].items()
            if name != "client.wait")
        assert service_total == pytest.approx(
            result.mean_service_ns * result.requests, rel=1e-9)
        assert {"kv.cpu", "mem.dram", "mem.cxl"} <= set(
            agg["components"])
