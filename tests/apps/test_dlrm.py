"""DLRM embedding reduction: Fig 8/9 shapes."""

import pytest

from repro import combined_testbed
from repro.apps.dlrm import DlrmInferenceStudy
from repro.apps.dlrm.inference import r1_remote_config, snc_memory_config
from repro.errors import WorkloadError

THREADS = [1, 4, 8, 16, 24, 28, 32]


@pytest.fixture(scope="module")
def study():
    return DlrmInferenceStudy(combined_testbed())


class TestConfigs:
    def test_snc_memory_keeps_cores(self):
        config = snc_memory_config(combined_testbed())
        assert config.sockets[0].cores == 40      # threads still scale
        assert config.sockets[0].dram.channels == 2

    def test_r1_remote_single_channel(self):
        config = r1_remote_config(combined_testbed())
        assert config.sockets[1].dram.channels == 1

    def test_r1_requires_remote(self):
        from repro import single_socket_testbed
        with pytest.raises(WorkloadError):
            r1_remote_config(single_socket_testbed())


class TestPlacements:
    def test_table_fractions(self, study):
        assert study.kernel("local").tables.cxl_fraction() == 0.0
        assert study.kernel("cxl").tables.cxl_fraction() == 1.0
        mixed = study.kernel(0.5).tables.cxl_fraction()
        assert mixed == pytest.approx(0.5, abs=0.01)

    def test_bad_placement_rejected(self, study):
        with pytest.raises(WorkloadError):
            study.kernel("hbm")

    def test_cxl_lookups_slower(self, study):
        local = study.kernel("local").tables.average_lookup_latency_ns()
        cxl = study.kernel("cxl").tables.average_lookup_latency_ns()
        assert cxl > 3 * local


class TestFig8Shapes:
    def test_dram_scales_linearly_through_32(self, study):
        """'the pure-DRAM inference throughput scales linearly, and its
        linear trend seems to extend beyond 32 threads'."""
        series = study.curve("local", THREADS)
        per_thread = [y / x for x, y in zip(series.x, series.y)]
        assert max(per_thread) / min(per_thread) < 1.05

    def test_cxl_flattens_early(self, study):
        series = study.curve("cxl", THREADS)
        assert series.y_at(32) < 1.1 * series.y_at(8)

    def test_r1_and_cxl_trends_similar(self, study):
        """'The overall trend of DDR5-R1 and CXL memory is similar'."""
        cxl = study.curve("cxl", THREADS)
        r1 = study.curve("remote", THREADS)
        # Both flatten: their 32-thread value is far below linear scaling.
        for series in (cxl, r1):
            assert series.y_at(32) < 0.5 * 32 * series.y_at(1)

    def test_interleave_ordering_at_32(self, study):
        """'As we reduce the amount of memory interleaved to CXL,
        inference throughput increases' — but 3.23% still loses to DRAM."""
        normalized = study.normalized_at(["cxl", 0.5, 0.0323])
        assert (normalized["CXL"] < normalized["CXL-50.00%"]
                < normalized["CXL-3.23%"] < 1.0)

    def test_throughput_monotone_in_threads(self, study):
        for placement in ("local", "cxl", 0.5):
            assert study.curve(placement, THREADS).is_monotone_increasing()


class TestFig9Snc:
    def test_snc_stops_scaling(self, study):
        """'the inference throughput on SNC ... stops scaling linearly
        after 24 threads'."""
        series = study.curve("local", THREADS, snc=True)
        linear_8 = series.y_at(8) / 8
        assert series.y_at(16) == pytest.approx(16 * linear_8, rel=0.05)
        assert series.y_at(32) < 0.95 * 32 * linear_8

    def test_snc_binds_between_16_and_32_threads(self, study):
        kernel = study.kernel("local", snc=True)
        assert not kernel.is_bandwidth_bound(16)
        assert kernel.is_bandwidth_bound(32)

    def test_full_l8_not_bound_at_32(self, study):
        """Eight channels sustain DLRM beyond 32 threads (§5.2)."""
        assert not study.kernel("local").is_bandwidth_bound(32)

    def test_cxl_interleave_helps_under_snc(self, study):
        """'at 32 threads, putting 20% of memory on CXL increases the
        inference throughput by 11% compared to the SNC case'."""
        gain = study.snc_gain(0.2, threads=32)
        assert 0.05 <= gain <= 0.30

    def test_interleave_hurts_when_not_bound(self, study):
        """Off SNC (no bandwidth bound), interleaving only adds latency."""
        base = study.kernel("local").throughput(8)
        mixed = study.kernel(0.2).throughput(8)
        assert mixed < base


class TestKernelValidation:
    def test_zero_threads_rejected(self, study):
        with pytest.raises(WorkloadError):
            study.kernel("local").throughput(0)

    def test_bytes_per_inference(self, study):
        kernel = study.kernel("local")
        assert kernel.bytes_per_inference == 256 * 4 * 64   # 256 rows x 4 lines
