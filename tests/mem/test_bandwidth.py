"""Bandwidth curve properties: queueing inflation and row locality."""

import pytest
from hypothesis import given, strategies as st

from repro.mem import queueing_inflation, row_locality_efficiency
from repro.mem.bandwidth import loaded_latency_ns


class TestQueueingInflation:
    def test_idle_is_one(self):
        assert queueing_inflation(0.0) == 1.0

    def test_monotone_in_utilization(self):
        values = [queueing_inflation(rho / 10) for rho in range(10)]
        for lower, higher in zip(values, values[1:]):
            assert higher >= lower

    def test_flat_below_knee(self):
        assert queueing_inflation(0.5) < 1.2

    def test_explodes_near_saturation(self):
        assert queueing_inflation(0.98) > 3.0

    def test_capped(self):
        assert queueing_inflation(0.999) <= 8.0
        assert queueing_inflation(5.0) <= 8.0   # overload clamps

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            queueing_inflation(-0.1)

    @given(st.floats(min_value=0.0, max_value=2.0))
    def test_always_at_least_one(self, rho):
        assert queueing_inflation(rho) >= 1.0


class TestRowLocality:
    KW = dict(sequential_eff=0.72, random_eff=0.38)

    def test_long_runs_approach_sequential(self):
        eff = row_locality_efficiency(1 << 20, 1.0, **self.KW)
        assert eff == pytest.approx(0.72, abs=0.01)

    def test_single_lines_hit_random_floor(self):
        eff = row_locality_efficiency(64, 1.0, **self.KW)
        assert eff == pytest.approx(0.38, abs=0.02)

    def test_monotone_in_block_size(self):
        sizes = [64, 256, 1024, 4096, 16384, 65536]
        effs = [row_locality_efficiency(s, 1.0, **self.KW) for s in sizes]
        for lower, higher in zip(effs, effs[1:]):
            assert higher >= lower

    def test_stream_mixing_hurts(self):
        few = row_locality_efficiency(16384, 1.0, **self.KW)
        many = row_locality_efficiency(16384, 16.0, **self.KW)
        assert many < few

    def test_never_below_random_floor(self):
        eff = row_locality_efficiency(16384, 1000.0, **self.KW)
        assert eff >= 0.38

    def test_sub_line_block_rejected(self):
        with pytest.raises(ValueError):
            row_locality_efficiency(32, 1.0, **self.KW)

    def test_bad_efficiency_ordering_rejected(self):
        with pytest.raises(ValueError):
            row_locality_efficiency(64, 1.0, sequential_eff=0.3,
                                    random_eff=0.5)

    @given(st.integers(min_value=64, max_value=1 << 22),
           st.floats(min_value=0.0, max_value=64.0))
    def test_bounded(self, block, streams):
        eff = row_locality_efficiency(block, streams, **self.KW)
        assert 0.38 <= eff <= 0.72


class TestLoadedLatency:
    def test_idle_equals_base(self):
        assert loaded_latency_ns(100.0, 0.0) == pytest.approx(100.0)

    def test_loaded_exceeds_base(self):
        assert loaded_latency_ns(100.0, 0.95) > 150.0

    def test_zero_base_rejected(self):
        with pytest.raises(ValueError):
            loaded_latency_ns(0.0, 0.5)
