"""Bank-level DRAM simulation validates the analytic efficiency story."""

from dataclasses import replace

import numpy as np
import pytest

from repro.errors import DeviceError
from repro.mem.banks import (
    Bank,
    DdrTimings,
    ddr4_2666_timings,
    ddr5_4800_timings,
)
from repro.mem.dram_sim import DramChannelSim


class TestTimings:
    def test_burst_time(self):
        # BL8 at 4800 MT/s: 8 beats / 4800e6 = 1.67 ns.
        assert ddr5_4800_timings().burst_ns == pytest.approx(1.667,
                                                             abs=0.01)

    def test_peak_matches_units_helper(self):
        from repro.units import ddr_peak_bandwidth
        timings = ddr5_4800_timings()
        assert timings.peak_bandwidth == ddr_peak_bandwidth(4800, 1)

    def test_row_geometry(self):
        assert ddr5_4800_timings().lines_per_row == 128

    def test_validation(self):
        with pytest.raises(DeviceError):
            DdrTimings("bad", transfer_mt_s=0, banks=16, trcd_ns=1,
                       trp_ns=1, tcl_ns=1, tras_ns=1, tfaw_ns=1)
        with pytest.raises(DeviceError):
            DdrTimings("bad", transfer_mt_s=4800, banks=16, trcd_ns=-1,
                       trp_ns=1, tcl_ns=1, tras_ns=1, tfaw_ns=1)


class TestBank:
    def test_row_hit_is_cheaper_than_miss(self):
        timings = ddr5_4800_timings()
        bank = Bank(timings, 0)
        miss_at, hit = bank.access(row=1, now=0.0)
        assert not hit
        follow_at, hit2 = bank.access(row=1, now=bank.busy_until)
        assert hit2
        assert follow_at - bank.busy_until < miss_at  # hit path shorter

    def test_row_conflict_pays_precharge(self):
        timings = ddr5_4800_timings()
        bank = Bank(timings, 0)
        bank.access(row=1, now=0.0)
        conflict_at, hit = bank.access(row=2, now=1000.0)
        assert not hit
        # precharge + activate + CAS after the issue point.
        assert conflict_at >= 1000.0 + timings.trp_ns + timings.trcd_ns

    def test_hit_miss_counters(self):
        bank = Bank(ddr5_4800_timings(), 0)
        bank.access(row=1, now=0.0)
        bank.access(row=1, now=100.0)
        bank.access(row=2, now=200.0)
        assert bank.row_hits == 1
        assert bank.row_misses == 2


class TestChannelSim:
    def test_sequential_stream_has_high_row_hit_rate(self):
        sim = DramChannelSim(ddr5_4800_timings())
        result = sim.replay(DramChannelSim.sequential_stream(4096))
        assert result.row_hit_rate > 0.95

    def test_random_stream_has_near_zero_hit_rate(self):
        sim = DramChannelSim(ddr5_4800_timings())
        result = sim.replay(DramChannelSim.random_stream(
            4096, footprint_lines=1 << 20))
        assert result.row_hit_rate < 0.05

    def test_sequential_efficiency_is_high(self):
        for timings in (ddr5_4800_timings(), ddr4_2666_timings()):
            eff = DramChannelSim(timings) \
                .measured_sequential_efficiency()
            assert 0.70 <= eff <= 1.0

    def test_random_efficiency_is_much_lower(self):
        """The simulated gap grounds the calibrated sequential/random
        efficiency split the analytic model uses."""
        for timings in (ddr5_4800_timings(), ddr4_2666_timings()):
            sim = DramChannelSim(timings)
            seq = sim.measured_sequential_efficiency()
            rnd = sim.measured_random_efficiency()
            assert rnd < 0.7 * seq
            assert 0.25 <= rnd <= 0.65

    def test_tfaw_throttles_random_traffic(self):
        """Doubling the activate window cuts random bandwidth."""
        base = ddr5_4800_timings()
        slow = replace(base, tfaw_ns=base.tfaw_ns * 2)
        fast_eff = DramChannelSim(base).measured_random_efficiency()
        slow_eff = DramChannelSim(slow).measured_random_efficiency()
        assert slow_eff < 0.7 * fast_eff

    def test_tfaw_irrelevant_for_sequential(self):
        """Row hits need no activates — tFAW cannot touch streaming."""
        base = ddr5_4800_timings()
        slow = replace(base, tfaw_ns=base.tfaw_ns * 4)
        assert DramChannelSim(slow).measured_sequential_efficiency() == \
            pytest.approx(DramChannelSim(base)
                          .measured_sequential_efficiency(), rel=0.02)

    def test_address_mapping_keeps_rows_contiguous(self):
        sim = DramChannelSim(ddr5_4800_timings())
        bank0, row0 = sim._map(0)
        bank1, row1 = sim._map(127)       # same 8 KiB row
        bank2, row2 = sim._map(128)       # next row, next bank
        assert (bank0, row0) == (bank1, row1)
        assert bank2 != bank0

    def test_empty_stream_rejected(self):
        with pytest.raises(DeviceError):
            DramChannelSim(ddr5_4800_timings()).replay(
                np.array([], dtype=np.int64))

    def test_deterministic_random_stream(self):
        a = DramChannelSim.random_stream(100, footprint_lines=1000,
                                         seed=3)
        b = DramChannelSim.random_stream(100, footprint_lines=1000,
                                         seed=3)
        assert np.array_equal(a, b)

    def test_multistream_interleave_shape(self):
        stream = DramChannelSim.interleaved_streams(2,
                                                    lines_per_thread=3)
        # Round-robin: t0.l0, t1.l0, t0.l1, t1.l1, ...
        assert stream[0] < stream[1]
        assert stream[2] == stream[0] + 1
        assert len(stream) == 6

    def test_bank_parallelism_helps_until_banks_exhausted(self):
        """§4.3.1's mixing observation, derived: a few streams exploit
        bank parallelism, but once threads exceed the bank count the
        controller sees 'requests with fewer patterns' and row locality
        collapses."""
        sim = DramChannelSim(ddr4_2666_timings())       # 16 banks
        few = sim.measured_multistream_efficiency(8, lines_per_thread=2048)
        at_banks = sim.measured_multistream_efficiency(
            16, lines_per_thread=1024)
        beyond = sim.measured_multistream_efficiency(
            32, lines_per_thread=512)
        assert few >= 0.85
        assert at_banks >= 0.85
        assert beyond < 0.7 * at_banks

    def test_more_banks_tolerate_more_streams(self):
        """DDR5's 32 banks absorb a thread count that thrashes DDR4."""
        ddr4 = DramChannelSim(ddr4_2666_timings()) \
            .measured_multistream_efficiency(24, lines_per_thread=512)
        ddr5 = DramChannelSim(ddr5_4800_timings()) \
            .measured_multistream_efficiency(24, lines_per_thread=512)
        assert ddr5 > ddr4

    def test_multistream_validation(self):
        with pytest.raises(DeviceError):
            DramChannelSim.interleaved_streams(0, lines_per_thread=1)
        with pytest.raises(DeviceError):
            DramChannelSim.interleaved_streams(1, lines_per_thread=0)

    def test_ddr4_slower_than_ddr5_absolute(self):
        ddr5 = DramChannelSim(ddr5_4800_timings()).replay(
            DramChannelSim.sequential_stream(4096))
        ddr4 = DramChannelSim(ddr4_2666_timings()).replay(
            DramChannelSim.sequential_stream(4096))
        assert ddr4.bandwidth < ddr5.bandwidth
