"""DRAM device, channel, and controller models."""

import pytest

from repro import units
from repro.config import DramConfig
from repro.mem import (
    AccessPattern,
    Channel,
    DramDevice,
    MemoryBackend,
    MemoryController,
)


def ddr5_l8() -> DramConfig:
    return DramConfig("DDR5", 4800, 8, units.gib(128), access_ns=52.0)


def ddr4_x1() -> DramConfig:
    return DramConfig("DDR4", 2666, 1, units.gib(16), access_ns=60.0,
                      sequential_efficiency=0.97, random_efficiency=0.42)


class TestDramDevice:
    def test_peak_bandwidth(self):
        device = DramDevice(ddr5_l8())
        assert units.to_gb_per_s(device.peak_bandwidth) == pytest.approx(307.2)

    def test_sequential_beats_random(self):
        device = DramDevice(ddr5_l8())
        seq = device.sustained_bandwidth(AccessPattern.SEQUENTIAL, 0, 8)
        rnd = device.sustained_bandwidth(AccessPattern.RANDOM_BLOCK, 1024, 8)
        assert seq > rnd

    def test_pointer_chase_uses_random_floor(self):
        device = DramDevice(ddr5_l8())
        eff = device.efficiency(AccessPattern.POINTER_CHASE, 64, 1)
        assert eff == pytest.approx(0.38)

    def test_bigger_random_blocks_sustain_more(self):
        device = DramDevice(ddr5_l8())
        small = device.sustained_bandwidth(AccessPattern.RANDOM_BLOCK, 1024, 4)
        large = device.sustained_bandwidth(AccessPattern.RANDOM_BLOCK,
                                           64 * 1024, 4)
        assert large > small

    def test_zero_streams_rejected(self):
        with pytest.raises(ValueError):
            DramDevice(ddr5_l8()).efficiency(AccessPattern.SEQUENTIAL, 0, 0)

    def test_eight_channels_absorb_streams_better_than_one(self):
        """Same per-stream traffic: L8's per-channel mixing is 8x lighter."""
        wide = DramDevice(ddr5_l8())
        narrow = DramDevice(ddr5_l8().with_channels(1))
        eff_wide = wide.efficiency(AccessPattern.RANDOM_BLOCK, 16384, 16)
        eff_narrow = narrow.efficiency(AccessPattern.RANDOM_BLOCK, 16384, 16)
        assert eff_wide > eff_narrow

    def test_write_penalty_applies_to_write_fraction(self):
        device = DramDevice(ddr5_l8())
        reads = device.efficiency(AccessPattern.SEQUENTIAL, 0, 8)
        writes = device.efficiency(AccessPattern.SEQUENTIAL, 0, 8,
                                   write_fraction=1.0)
        assert writes == pytest.approx(reads * (1 - 0.235))

    def test_l8_load_and_ntstore_ceilings_match_paper(self):
        """Fig 3a anchors: loads 221 GB/s, nt-stores 170 GB/s."""
        device = DramDevice(ddr5_l8())
        load = device.sustained_bandwidth(AccessPattern.SEQUENTIAL, 0, 26)
        ntst = device.sustained_bandwidth(AccessPattern.SEQUENTIAL, 0, 16,
                                          write_fraction=1.0)
        assert units.to_gb_per_s(load) == pytest.approx(221.0, abs=2.0)
        assert units.to_gb_per_s(ntst) == pytest.approx(170.0, abs=3.0)


class TestChannel:
    def test_per_channel_peak(self):
        channel = Channel(ddr5_l8(), 0)
        assert units.to_gb_per_s(channel.peak_bandwidth) == pytest.approx(38.4)

    def test_out_of_range_index_rejected(self):
        with pytest.raises(ValueError):
            Channel(ddr4_x1(), 1)

    def test_loaded_latency_grows_with_load(self):
        channel = Channel(ddr5_l8(), 0)
        idle = channel.loaded_access_ns(0.0)
        busy = channel.loaded_access_ns(channel.peak_bandwidth * 0.95)
        assert busy > idle
        assert idle == pytest.approx(52.0)

    def test_negative_load_rejected(self):
        with pytest.raises(ValueError):
            Channel(ddr5_l8(), 0).utilization(-1.0)


class TestMemoryController:
    def test_channel_count(self):
        assert MemoryController(ddr5_l8()).channel_count == 8
        assert MemoryController(ddr4_x1()).channel_count == 1

    def test_sustained_bandwidth_scales_with_channels(self):
        l8 = MemoryController(ddr5_l8())
        l1 = MemoryController(ddr5_l8().with_channels(1))
        bw8 = l8.sustained_bandwidth(AccessPattern.SEQUENTIAL, 0, 8)
        bw1 = l1.sustained_bandwidth(AccessPattern.SEQUENTIAL, 0, 8)
        assert bw8 > 5 * bw1

    def test_ddr4_sequential_approaches_theoretical(self):
        """Fig 3b: nt-store peak ~22 GB/s is near DDR4-2666's 21.3 GB/s."""
        controller = MemoryController(ddr4_x1())
        bw = controller.sustained_bandwidth(AccessPattern.SEQUENTIAL, 0, 1)
        assert units.to_gb_per_s(bw) == pytest.approx(20.7, abs=1.0)

    def test_loaded_access_latency(self):
        controller = MemoryController(ddr4_x1())
        capacity = controller.sustained_bandwidth(
            AccessPattern.SEQUENTIAL, 0, 1)
        idle = controller.loaded_access_ns(0.0)
        loaded = controller.loaded_access_ns(capacity * 0.97)
        assert loaded > idle * 2


class TestMemoryBackend:
    def test_idle_latencies_compose_extras(self):
        backend = MemoryBackend("DDR5-R1",
                                MemoryController(ddr5_l8().with_channels(1)),
                                extra_read_ns=120.0, extra_write_ns=100.0)
        assert backend.idle_read_ns() == pytest.approx(52.0 + 120.0)
        assert backend.idle_write_ns() == pytest.approx(52.0 + 100.0)

    def test_link_ceiling_caps_bus(self):
        backend = MemoryBackend("capped", MemoryController(ddr5_l8()),
                                link_bandwidth=units.gb_per_s(10.0))
        bw = backend.bus_ceiling(AccessPattern.SEQUENTIAL, 0, 8)
        assert units.to_gb_per_s(bw) == pytest.approx(10.0)

    def test_plain_dram_has_no_concurrency_derate(self):
        backend = MemoryBackend("DDR5-L8", MemoryController(ddr5_l8()))
        assert backend.concurrency_derate(readers=32, writers=32,
                                          nt_writers=32) == 1.0
