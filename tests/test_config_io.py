"""Config serialization: exact round trips and loud failure on typos."""

import json

import pytest

from repro.config import (
    combined_testbed,
    dual_socket_testbed,
    pooled_cxl_testbed,
    single_socket_testbed,
)
from repro.config_io import (
    load_system,
    save_system,
    system_from_dict,
    system_to_dict,
)
from repro.errors import ConfigError

PRESETS = [single_socket_testbed, dual_socket_testbed, combined_testbed,
           lambda: pooled_cxl_testbed(3)]


class TestRoundTrip:
    @pytest.mark.parametrize("preset", PRESETS,
                             ids=lambda p: getattr(p, "__name__", "pooled"))
    def test_dict_roundtrip_is_exact(self, preset):
        config = preset()
        assert system_from_dict(system_to_dict(config)) == config

    def test_file_roundtrip(self, tmp_path):
        config = combined_testbed()
        path = tmp_path / "testbed.json"
        save_system(config, path)
        assert load_system(path) == config

    def test_file_is_valid_json(self, tmp_path):
        path = tmp_path / "testbed.json"
        save_system(single_socket_testbed(), path)
        data = json.loads(path.read_text())
        assert data["name"] == "single-socket"
        assert data["sockets"][0]["cores"] == 32


class TestEditing:
    def test_edited_config_builds_a_system(self, tmp_path):
        """The intended workflow: dump, tweak, reload, build."""
        from repro import build_system
        data = system_to_dict(single_socket_testbed())
        data["cxl_devices"][0]["fpga_penalty_ns"] = 0.0   # "ASIC" edit
        data["cxl_devices"][0]["dram"]["channels"] = 2
        config = system_from_dict(data)
        system = build_system(config)
        assert system.cxl_backend().cxl_config.fpga_penalty_ns == 0.0

    def test_validation_still_applies(self):
        data = system_to_dict(single_socket_testbed())
        data["sockets"][0]["cores"] = -1
        with pytest.raises(ConfigError):
            system_from_dict(data)


class TestFailureModes:
    def test_unknown_key_rejected(self):
        data = system_to_dict(single_socket_testbed())
        data["sockets"][0]["coers"] = 32        # typo
        del data["sockets"][0]["cores"]
        with pytest.raises(ConfigError) as error:
            system_from_dict(data)
        assert "coers" in str(error.value)

    def test_unknown_nested_key_rejected(self):
        data = system_to_dict(single_socket_testbed())
        data["cxl_devices"][0]["dram"]["chanels"] = 2
        with pytest.raises(ConfigError):
            system_from_dict(data)

    def test_missing_file(self, tmp_path):
        with pytest.raises(ConfigError):
            load_system(tmp_path / "absent.json")

    def test_invalid_json(self, tmp_path):
        path = tmp_path / "broken.json"
        path.write_text("{not json")
        with pytest.raises(ConfigError):
            load_system(path)

    def test_wrong_shape_rejected(self):
        with pytest.raises(ConfigError):
            system_from_dict({"name": "x", "sockets": ["not-an-object"]})
