"""Unit coverage for the span/trace layer (docs/TELEMETRY.md).

The recorder is pure sim-time arithmetic, so everything here is exact:
segment sums close on the recorded totals, exemplar selection is a
deterministic sort, and the Perfetto export must validate against the
same checker the tracer's traces do.
"""

import pytest

from repro.telemetry import NULL_SPANS, SpanConfig, SpanRecorder
from repro.telemetry.report import trace_track_names, validate_chrome_trace
from repro.telemetry.spans import (
    SpanError,
    breakdown_rows,
    combine_aggregates,
    perfetto_spans_trace,
    render_attribution,
    render_waterfall,
    spans_digest,
)


class TestSpanConfig:
    def test_defaults(self):
        config = SpanConfig()
        assert config.exemplars == 4
        assert config.windows == 0

    @pytest.mark.parametrize("spec,expected", [
        ("", SpanConfig()),
        ("k=8", SpanConfig(exemplars=8)),
        ("exemplars=2", SpanConfig(exemplars=2)),
        ("k=8,windows=6", SpanConfig(exemplars=8, windows=6)),
        (" windows=3 , k=1 ", SpanConfig(exemplars=1, windows=3)),
    ])
    def test_parse(self, spec, expected):
        assert SpanConfig.parse(spec) == expected

    @pytest.mark.parametrize("spec", [
        "k", "k=x", "depth=3", "k=0", "windows=-1",
    ])
    def test_parse_rejects(self, spec):
        with pytest.raises(SpanError):
            SpanConfig.parse(spec)

    def test_to_dict_is_canonical(self):
        assert SpanConfig(exemplars=3, windows=2).to_dict() == \
            {"exemplars": 3, "windows": 2}


class TestNullRecorder:
    def test_disabled_and_inert(self):
        assert not NULL_SPANS.enabled
        NULL_SPANS.record(0, 0.0, [("a", 1.0)])
        NULL_SPANS.absorb({"requests": 1})
        assert NULL_SPANS.export() is None


def _record_some(recorder, n=10):
    for i in range(n):
        recorder.record(i, i * 1000.0,
                        [("wait", 100.0 * (i + 1)), ("cpu", 50.0),
                         ("mem", 25.0)])


class TestRecorder:
    def test_component_sums_close_on_total(self):
        recorder = SpanRecorder()
        _record_some(recorder)
        agg = recorder.export()
        assert agg["requests"] == 10
        component_total = sum(slot["total_ns"]
                              for slot in agg["components"].values())
        assert component_total == pytest.approx(agg["total_ns"],
                                                rel=1e-12)

    def test_zero_duration_segments_dropped(self):
        recorder = SpanRecorder()
        recorder.record(0, 0.0, [("a", 10.0), ("b", 0.0)])
        agg = recorder.export()
        assert list(agg["components"]) == ["a"]

    def test_exemplars_slowest_first_index_tiebreak(self):
        recorder = SpanRecorder(SpanConfig(exemplars=3))
        recorder.record(5, 0.0, [("a", 100.0)])
        recorder.record(1, 0.0, [("a", 100.0)])   # same total, lower idx
        recorder.record(2, 0.0, [("a", 300.0)])
        recorder.record(3, 0.0, [("a", 50.0)])
        agg = recorder.export()
        assert [ex["index"] for ex in agg["exemplars"]] == [2, 1, 5]

    def test_exemplar_cap(self):
        recorder = SpanRecorder(SpanConfig(exemplars=2))
        _record_some(recorder)
        assert len(recorder.export()["exemplars"]) == 2

    def test_tail_is_p99_conditioned(self):
        recorder = SpanRecorder()
        _record_some(recorder, n=100)
        agg = recorder.export()
        assert agg["tail"]["requests"] < agg["requests"]
        # The slowest request is always at or above its own p99.
        assert agg["tail"]["requests"] >= 1
        tail_total = sum(slot["total_ns"]
                         for slot in agg["tail"]["components"].values())
        assert tail_total == pytest.approx(agg["tail"]["total_ns"],
                                           rel=1e-12)

    def test_windows_partition_requests(self):
        recorder = SpanRecorder(SpanConfig(windows=4))
        _record_some(recorder, n=20)
        agg = recorder.export()
        windows = agg["windows"]
        assert len(windows) == 4
        assert sum(w["requests"] for w in windows) == 20
        for window in windows:
            if window["requests"]:
                assert window["throughput_rps"] > 0
                assert "p99_ns" in window

    def test_empty_recorder_exports_none(self):
        assert SpanRecorder().export() is None


class TestCombine:
    def test_single_passthrough(self):
        recorder = SpanRecorder()
        _record_some(recorder)
        agg = recorder.export()
        assert combine_aggregates([agg]) == agg

    def test_combine_sums_and_reranks(self):
        first, second = SpanRecorder(), SpanRecorder()
        first.record(0, 0.0, [("a", 100.0)])
        first.record(1, 0.0, [("a", 900.0)])
        second.record(0, 0.0, [("a", 500.0), ("b", 10.0)])
        combined = combine_aggregates([first.export(), second.export()])
        assert combined["requests"] == 3
        assert combined["components"]["a"]["count"] == 3
        assert combined["exemplars"][0]["total_ns"] == 900.0

    def test_absorb_matches_serial_combination(self):
        """Parent absorb() of worker exports == combining by hand."""
        parts = []
        for unit in range(3):
            recorder = SpanRecorder()
            _record_some(recorder, n=5 + unit)
            parts.append(recorder.export())
        parent = SpanRecorder()
        for part in parts:
            parent.absorb(part)
        assert parent.export() == combine_aggregates(parts)

    def test_combine_empty_raises(self):
        with pytest.raises(SpanError):
            combine_aggregates([])


class TestRendering:
    def test_breakdown_rows_sorted_by_mean_share(self):
        recorder = SpanRecorder()
        _record_some(recorder)
        rows = breakdown_rows(recorder.export())
        shares = [mean for _, mean, _ in rows]
        assert shares == sorted(shares, reverse=True)
        assert sum(shares) == pytest.approx(1.0)

    def test_render_attribution_mentions_components(self):
        recorder = SpanRecorder()
        _record_some(recorder)
        text = render_attribution(recorder.export(), title="t")
        assert "t: 10 requests" in text
        for name in ("wait", "cpu", "mem"):
            assert name in text

    def test_render_waterfall_lists_segments_in_order(self):
        recorder = SpanRecorder(SpanConfig(exemplars=1))
        recorder.record(7, 10.0, [("first", 30.0), ("second", 70.0)])
        text = render_waterfall(recorder.export()["exemplars"][0])
        assert "request #7" in text
        assert text.index("first") < text.index("second")


class TestPerfettoExport:
    def _points(self):
        recorder = SpanRecorder(SpanConfig(exemplars=2))
        _record_some(recorder)
        return {"point-a": recorder.export()}

    def test_trace_validates(self):
        trace = perfetto_spans_trace(self._points())
        validate_chrome_trace(trace)
        assert trace_track_names(trace) >= {"wait", "cpu", "mem"}

    def test_slices_chain_back_to_back(self):
        trace = perfetto_spans_trace(self._points())
        slices = [e for e in trace["traceEvents"] if e["ph"] == "X"]
        # Segments of one exemplar are laid out contiguously in time.
        by_request = {}
        for event in slices:
            by_request.setdefault(event["args"]["request"],
                                  []).append(event)
        for events in by_request.values():
            for prev, nxt in zip(events, events[1:]):
                assert nxt["ts"] == pytest.approx(
                    prev["ts"] + prev["dur"])

    def test_flow_events_open_and_close(self):
        trace = perfetto_spans_trace(self._points())
        phases = [e["ph"] for e in trace["traceEvents"]]
        assert phases.count("s") == phases.count("f") == 2


class TestDigest:
    def test_counts_nested_exemplars(self):
        recorder = SpanRecorder(SpanConfig(exemplars=3))
        _record_some(recorder)
        payload = {"points": {"p1": recorder.export(),
                              "p2": recorder.export()}}
        digest = spans_digest(payload)
        assert digest["exemplars"] == 6
        assert len(digest["digest"]) == 12

    def test_digest_is_stable_and_content_sensitive(self):
        payload = {"points": {"p": {"exemplars": [], "total_ns": 1.0}}}
        assert spans_digest(payload) == spans_digest(payload)
        changed = {"points": {"p": {"exemplars": [], "total_ns": 2.0}}}
        assert spans_digest(payload)["digest"] \
            != spans_digest(changed)["digest"]
