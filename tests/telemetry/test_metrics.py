"""Counter/gauge/histogram semantics and the registry."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.errors import TelemetryError
from repro.telemetry import (
    Counter,
    Gauge,
    Histogram,
    NullRegistry,
    Registry,
    interpolate_percentile,
)


class TestCounter:
    def test_starts_at_zero(self):
        assert Counter("c").value == 0

    def test_inc_accumulates(self):
        counter = Counter("c")
        counter.inc()
        counter.inc(4)
        assert counter.value == 5

    def test_negative_increment_rejected(self):
        with pytest.raises(TelemetryError):
            Counter("c").inc(-1)


class TestGauge:
    def test_set_and_add(self):
        gauge = Gauge("g")
        gauge.set(3.5)
        gauge.add(1.5)
        assert gauge.value == 5.0


class TestHistogram:
    def test_mean_and_extremes(self):
        hist = Histogram("h")
        for value in (10.0, 20.0, 30.0):
            hist.record(value)
        assert hist.count == 3
        assert hist.mean() == 20.0
        assert hist.min() == 10.0
        assert hist.max() == 30.0

    def test_percentiles(self):
        hist = Histogram("h")
        for value in range(1, 101):
            hist.record(float(value))
        assert hist.p50() == pytest.approx(50.5)
        assert hist.p99() == pytest.approx(
            float(np.percentile(np.arange(1.0, 101.0), 99,
                                method="linear")))

    def test_empty_stats_rejected(self):
        hist = Histogram("h")
        with pytest.raises(ValueError):
            hist.mean()
        with pytest.raises(ValueError):
            hist.p99()

    def test_sorted_cache_invalidated_on_record(self):
        # Interleave percentile queries with records: each query must
        # see every sample recorded so far, not a stale sorted cache.
        hist = Histogram("h")
        hist.record(10.0)
        assert hist.percentile(100.0) == 10.0
        hist.record(5.0)
        assert hist.percentile(0.0) == 5.0
        hist.record(20.0)
        assert hist.percentile(100.0) == 20.0

    def test_bucket_counts(self):
        hist = Histogram("h", buckets=(10.0, 100.0))
        for value in (1.0, 5.0, 50.0, 500.0):
            hist.record(value)
        pairs = hist.bucket_counts()
        assert pairs == [(10.0, 2), (100.0, 1), (float("inf"), 1)]

    def test_non_increasing_buckets_rejected(self):
        with pytest.raises(TelemetryError):
            Histogram("h", buckets=(10.0, 10.0))
        with pytest.raises(TelemetryError):
            Histogram("h", buckets=(100.0, 10.0))

    @given(st.lists(st.floats(min_value=0, max_value=1e9), min_size=1,
                    max_size=100),
           st.floats(min_value=0, max_value=100))
    def test_percentile_matches_numpy(self, data, pct):
        hist = Histogram("h")
        for value in data:
            hist.record(value)
        theirs = float(np.percentile(np.array(data), pct,
                                     method="linear"))
        assert hist.percentile(pct) == pytest.approx(theirs, rel=1e-9,
                                                     abs=1e-9)


class TestInterpolatePercentile:
    def test_requires_sorted_nonempty(self):
        with pytest.raises(ValueError):
            interpolate_percentile([], 50.0)
        with pytest.raises(ValueError):
            interpolate_percentile([1.0], -1.0)


class TestRegistry:
    def test_get_or_create_returns_same_instance(self):
        registry = Registry()
        assert registry.counter("a.b") is registry.counter("a.b")
        assert registry.gauge("a.g") is registry.gauge("a.g")
        assert registry.histogram("a.h") is registry.histogram("a.h")

    def test_type_mismatch_rejected(self):
        registry = Registry()
        registry.counter("a.b")
        with pytest.raises(TelemetryError):
            registry.gauge("a.b")

    def test_snapshot_is_flat_and_sorted(self):
        registry = Registry()
        registry.counter("z.last").inc(2)
        registry.gauge("a.first").set(1.0)
        snapshot = registry.snapshot()
        assert list(snapshot) == sorted(snapshot)
        assert snapshot["z.last"]["value"] == 2

    def test_tree_nests_on_dots(self):
        registry = Registry()
        registry.counter("cxl.port.transactions").inc()
        tree = registry.tree()
        assert tree["cxl"]["port"]["transactions"]["value"] == 1


class TestNullRegistry:
    def test_drops_everything(self):
        registry = NullRegistry()
        counter = registry.counter("c")
        counter.inc(100)
        assert counter.value == 0
        hist = registry.histogram("h")
        hist.record(5.0)
        assert hist.count == 0
        assert registry.snapshot() == {}

    def test_shared_singletons(self):
        registry = NullRegistry()
        assert registry.counter("a") is registry.counter("b")
