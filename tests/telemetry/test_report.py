"""Metrics rendering/export and trace validation."""

import json

import pytest

from repro.errors import TelemetryError
from repro.telemetry import Registry, Tracer
from repro.telemetry.report import (
    render_metrics,
    validate_chrome_trace,
    write_metrics,
    write_trace,
)


def populated_registry() -> Registry:
    registry = Registry()
    registry.counter("cxl.e2e.read.completed").inc(42)
    registry.gauge("mem.controller.utilization").set(0.75)
    hist = registry.histogram("cxl.e2e.read.latency_ns")
    for value in (100.0, 200.0, 300.0):
        hist.record(value)
    return registry


class TestRenderMetrics:
    def test_empty_registry(self):
        assert render_metrics(Registry()) == "(no metrics recorded)"

    def test_lists_every_metric(self):
        text = render_metrics(populated_registry())
        assert "cxl.e2e.read.completed" in text
        assert "count=3" in text
        assert "0.75" in text


class TestWriteMetrics:
    def test_json_snapshot(self, tmp_path):
        path = write_metrics(populated_registry(),
                             tmp_path / "metrics.json")
        snap = json.loads(path.read_text())
        assert snap["cxl.e2e.read.completed"]["value"] == 42
        assert snap["cxl.e2e.read.latency_ns"]["count"] == 3
        assert snap["cxl.e2e.read.latency_ns"]["p50"] == 200.0


class TestWriteTrace:
    def test_written_file_is_valid(self, tmp_path):
        tracer = Tracer()
        tracer.complete("core", "read", 0.0, 10.0)
        path = write_trace(tracer, tmp_path / "trace.json")
        validate_chrome_trace(json.loads(path.read_text()))


class TestValidateChromeTrace:
    def test_accepts_minimal_trace(self):
        validate_chrome_trace({"traceEvents": [
            {"name": "a", "ph": "i", "ts": 0, "pid": 1, "tid": 1}]})

    def test_rejects_non_object(self):
        with pytest.raises(TelemetryError):
            validate_chrome_trace([])

    def test_rejects_missing_trace_events(self):
        with pytest.raises(TelemetryError):
            validate_chrome_trace({"events": []})

    def test_rejects_missing_required_key(self):
        with pytest.raises(TelemetryError):
            validate_chrome_trace({"traceEvents": [
                {"name": "a", "ph": "i", "ts": 0, "pid": 1}]})

    def test_rejects_span_without_dur(self):
        with pytest.raises(TelemetryError):
            validate_chrome_trace({"traceEvents": [
                {"name": "a", "ph": "X", "ts": 0, "pid": 1, "tid": 1}]})

    def test_rejects_non_numeric_ts(self):
        with pytest.raises(TelemetryError):
            validate_chrome_trace({"traceEvents": [
                {"name": "a", "ph": "i", "ts": "0", "pid": 1, "tid": 1}]})
