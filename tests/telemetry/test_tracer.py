"""Event recording, Chrome JSON schema, and the no-op tracer."""

import json

import pytest

from repro.errors import TelemetryError
from repro.telemetry import NULL_TRACER, NullTracer, Tracer
from repro.telemetry.report import (
    REQUIRED_EVENT_KEYS,
    trace_track_names,
    validate_chrome_trace,
)
from repro.telemetry.tracer import TRACE_PID


class TestRecording:
    def test_complete_span(self):
        tracer = Tracer()
        tracer.complete("core", "read", 100.0, 50.0, bank=3)
        (event,) = tracer.events
        assert (event.track, event.name, event.phase) == ("core", "read",
                                                          "X")
        assert event.ts_ns == 100.0
        assert event.dur_ns == 50.0
        assert event.args == {"bank": 3}

    def test_negative_duration_rejected(self):
        with pytest.raises(TelemetryError):
            Tracer().complete("core", "read", 100.0, -1.0)

    def test_instant_and_count(self):
        tracer = Tracer()
        tracer.instant("cxl.port", "stall", 10.0)
        tracer.count("cxl.device.wbuf", "occupancy", 20.0, 7.0)
        phases = [event.phase for event in tracer.events]
        assert phases == ["i", "C"]
        assert tracer.events[1].args == {"value": 7.0}

    def test_track_ids_stable_in_creation_order(self):
        tracer = Tracer()
        assert tracer.track_id("core") == 1
        assert tracer.track_id("dram.channel") == 2
        assert tracer.track_id("core") == 1
        assert tracer.tracks == ["core", "dram.channel"]

    def test_empty_track_name_rejected(self):
        with pytest.raises(TelemetryError):
            Tracer().track_id("")


class TestChromeExport:
    def make_tracer(self):
        tracer = Tracer(process_name="unit-test")
        tracer.complete("core", "read", 1000.0, 500.0)
        tracer.instant("cxl.port", "stall", 1200.0)
        tracer.count("cxl.device.wbuf", "occupancy", 1300.0, 3.0)
        return tracer

    def test_json_parses_and_validates(self):
        obj = json.loads(self.make_tracer().to_json())
        validate_chrome_trace(obj)
        assert obj["displayTimeUnit"] == "ns"

    def test_required_keys_on_every_event(self):
        obj = self.make_tracer().chrome_trace()
        for event in obj["traceEvents"]:
            for key in REQUIRED_EVENT_KEYS:
                assert key in event, (event, key)
            assert event["pid"] == TRACE_PID

    def test_timestamps_are_microseconds(self):
        obj = self.make_tracer().chrome_trace()
        span = next(e for e in obj["traceEvents"] if e["ph"] == "X")
        assert span["ts"] == 1.0      # 1000 ns -> 1 us
        assert span["dur"] == 0.5

    def test_thread_metadata_names_tracks(self):
        obj = self.make_tracer().chrome_trace()
        assert trace_track_names(obj) == {"core", "cxl.port",
                                          "cxl.device.wbuf"}

    def test_write_roundtrip(self, tmp_path):
        path = tmp_path / "trace.json"
        self.make_tracer().write(path)
        obj = validate_chrome_trace(json.loads(path.read_text()))
        assert len(obj["traceEvents"]) > 3


class TestNullTracer:
    def test_disabled_and_shared(self):
        assert NULL_TRACER.enabled is False
        assert Tracer().enabled is True

    def test_records_nothing(self):
        tracer = NullTracer()
        tracer.complete("core", "read", 0.0, 1.0)
        tracer.instant("core", "x", 0.0)
        tracer.count("core", "c", 0.0, 1.0)
        assert len(tracer) == 0
        assert tracer.events == []

    def test_exports_valid_empty_trace(self):
        obj = validate_chrome_trace(NullTracer().chrome_trace())
        # Only the process_name metadata event remains.
        assert [e["ph"] for e in obj["traceEvents"]] == ["M"]
