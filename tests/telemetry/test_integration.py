"""Telemetry wired through the simulators: determinism + track coverage."""

import json

from repro.cxl.e2e_sim import CxlEndToEndSim, CxlWriteEndToEndSim
from repro.sim import LatencyRecorder
from repro.telemetry import NULL_TELEMETRY, Telemetry
from repro.telemetry.report import trace_track_names, validate_chrome_trace


def traced_read_run(threads=4, lines=64):
    telemetry = Telemetry.on()
    CxlEndToEndSim(telemetry=telemetry).run(threads=threads,
                                            lines_per_thread=lines)
    return telemetry


class TestDeterminism:
    def test_identical_runs_emit_identical_event_sequences(self):
        first = traced_read_run()
        second = traced_read_run()
        assert [e.key() for e in first.tracer.events] \
            == [e.key() for e in second.tracer.events]

    def test_identical_runs_serialize_identically(self):
        assert traced_read_run().tracer.to_json() \
            == traced_read_run().tracer.to_json()


class TestTrackCoverage:
    def test_read_sim_covers_port_dram_core_tracks(self):
        telemetry = traced_read_run()
        obj = validate_chrome_trace(
            json.loads(telemetry.tracer.to_json()))
        names = trace_track_names(obj)
        assert {"core", "cxl.port", "dram.channel",
                "sim.engine"} <= names

    def test_write_sim_adds_wbuf_occupancy_track(self):
        telemetry = Telemetry.on()
        CxlWriteEndToEndSim(telemetry=telemetry).run(threads=2,
                                                     lines_per_thread=64)
        assert "cxl.device.wbuf" in telemetry.tracer.tracks
        phases = {e.phase for e in telemetry.tracer.events
                  if e.track == "cxl.device.wbuf"}
        assert "C" in phases        # occupancy counter samples

    def test_combined_run_spans_at_least_four_tracks(self):
        telemetry = Telemetry.on()
        CxlEndToEndSim(telemetry=telemetry).run(threads=2,
                                                lines_per_thread=32)
        CxlWriteEndToEndSim(telemetry=telemetry).run(threads=2,
                                                     lines_per_thread=32)
        obj = validate_chrome_trace(telemetry.tracer.chrome_trace())
        assert len(trace_track_names(obj)) >= 4


class TestMetricsWiring:
    def test_read_sim_populates_registry(self):
        telemetry = traced_read_run()
        snap = telemetry.registry.snapshot()
        assert snap["cxl.e2e.read.completed"]["value"] == 4 * 64
        assert snap["cxl.e2e.read.latency_ns"]["count"] == 4 * 64
        assert snap["cxl.e2e.read.latency_ns"]["p99"] > 0

    def test_disabled_telemetry_records_nothing(self):
        result = CxlEndToEndSim(telemetry=NULL_TELEMETRY).run(
            threads=2, lines_per_thread=32)
        assert result.completed == 64
        assert NULL_TELEMETRY.registry.snapshot() == {}
        assert len(NULL_TELEMETRY.tracer) == 0

    def test_disabled_matches_enabled_results(self):
        plain = CxlEndToEndSim().run(threads=2, lines_per_thread=32)
        traced = CxlEndToEndSim(telemetry=Telemetry.on()).run(
            threads=2, lines_per_thread=32)
        assert plain == traced


class TestLatencyRecorderRouting:
    def test_recorder_wraps_histogram(self):
        recorder = LatencyRecorder("lat")
        for value in (10.0, 20.0, 30.0):
            recorder.record(value)
        assert recorder.histogram.count == 3
        assert recorder.p50() == recorder.histogram.p50() == 20.0

    def test_recorder_shares_registry_histogram(self):
        telemetry = Telemetry.on()
        hist = telemetry.registry.histogram("app.latency_ns")
        recorder = LatencyRecorder("app.latency_ns", histogram=hist)
        recorder.record(42.0)
        assert telemetry.registry.snapshot()["app.latency_ns"]["count"] \
            == 1
