"""Page allocator: occupancy accounting, spill behavior, strict binds."""

import pytest
from hypothesis import given, settings, strategies as st

from repro import units
from repro.errors import AllocationError
from repro.topology import (
    Interleaved,
    Membind,
    MemoryKind,
    NumaNode,
    NumaTopology,
    PageAllocator,
    Preferred,
    WeightedInterleave,
)

DRAM, REMOTE, CXL = 0, 1, 2


def small_topology() -> NumaTopology:
    """Small capacities so exhaustion paths are testable."""
    return NumaTopology(nodes=[
        NumaNode(DRAM, MemoryKind.DRAM_LOCAL, units.mib(8), cpus=4),
        NumaNode(REMOTE, MemoryKind.DRAM_REMOTE, units.mib(8), cpus=4),
        NumaNode(CXL, MemoryKind.CXL, units.mib(1)),
    ])


class TestBasicAllocation:
    def setup_method(self):
        self.alloc = PageAllocator(small_topology())

    def test_on_node_places_everything_there(self):
        allocation = self.alloc.on_node(units.kib(64), CXL)
        assert allocation.node_histogram() == {CXL: 16}

    def test_occupancy_tracked(self):
        self.alloc.on_node(units.kib(64), CXL)
        assert self.alloc.used_bytes(CXL) == units.kib(64)

    def test_free_returns_pages(self):
        allocation = self.alloc.on_node(units.kib(64), CXL)
        self.alloc.free(allocation)
        assert self.alloc.used_bytes(CXL) == 0

    def test_double_free_detected(self):
        allocation = self.alloc.on_node(units.kib(64), CXL)
        self.alloc.free(allocation)
        with pytest.raises(AllocationError):
            self.alloc.free(allocation)

    def test_zero_size_rejected(self):
        with pytest.raises(AllocationError):
            self.alloc.allocate(0, Membind(DRAM))

    def test_unknown_node_rejected(self):
        with pytest.raises(AllocationError):
            self.alloc.allocate(units.kib(4), Membind(42))

    def test_size_rounds_up_to_pages(self):
        allocation = self.alloc.allocate(100, Membind(DRAM))
        assert allocation.num_pages == 1

    def test_membind_overflow_raises(self):
        # CXL node has 1 MiB; ask for 2 MiB.
        with pytest.raises(AllocationError):
            self.alloc.on_node(units.mib(2), CXL)


class TestPreferredSpill:
    def setup_method(self):
        self.alloc = PageAllocator(small_topology())

    def test_spills_to_fallback_when_full(self):
        policy = Preferred(CXL, fallback_node_id=DRAM)
        allocation = self.alloc.allocate(units.mib(2), policy)
        histogram = allocation.node_histogram()
        assert histogram[CXL] == self.alloc.capacity_pages(CXL)
        assert histogram[DRAM] == allocation.num_pages - histogram[CXL]

    def test_no_spill_when_fits(self):
        policy = Preferred(CXL, fallback_node_id=DRAM)
        allocation = self.alloc.allocate(units.kib(512), policy)
        assert allocation.node_histogram() == {CXL: 128}

    def test_both_full_raises(self):
        policy = Preferred(CXL, fallback_node_id=DRAM)
        with pytest.raises(AllocationError):
            self.alloc.allocate(units.mib(64), policy)


class TestInterleavedAllocation:
    def setup_method(self):
        self.alloc = PageAllocator(small_topology())

    def test_even_split(self):
        allocation = self.alloc.allocate(
            units.kib(512), Interleaved((DRAM, REMOTE)))
        histogram = allocation.node_histogram()
        assert histogram[DRAM] == histogram[REMOTE] == 64

    def test_weighted_ratio_is_exact(self):
        policy = WeightedInterleave.from_ratio(DRAM, CXL, 4, 1)
        allocation = self.alloc.allocate(units.kib(400), policy)  # 100 pages
        histogram = allocation.node_histogram()
        assert histogram[DRAM] == 80
        assert histogram[CXL] == 20

    def test_interleave_participant_exhaustion_raises(self):
        # CXL only has 256 pages; a 50:50 split of 4 MiB needs 512 there.
        with pytest.raises(AllocationError):
            self.alloc.allocate(units.mib(4), Interleaved((DRAM, CXL)))


class TestAllocationObject:
    def setup_method(self):
        self.alloc = PageAllocator(small_topology())

    def test_node_of_respects_page_boundaries(self):
        allocation = self.alloc.allocate(
            units.kib(8), Interleaved((DRAM, CXL)))
        assert allocation.node_of(0) == DRAM
        assert allocation.node_of(units.kib(4) - 1) == DRAM
        assert allocation.node_of(units.kib(4)) == CXL

    def test_node_of_out_of_range(self):
        allocation = self.alloc.on_node(units.kib(4), DRAM)
        with pytest.raises(AllocationError):
            allocation.node_of(units.kib(4))
        with pytest.raises(AllocationError):
            allocation.node_of(-1)

    def test_nodes_of_vectorized(self):
        import numpy as np
        allocation = self.alloc.allocate(
            units.kib(8), Interleaved((DRAM, CXL)))
        offsets = np.array([0, units.kib(4), 100, units.kib(4) + 100])
        nodes = allocation.nodes_of(offsets)
        assert list(nodes) == [DRAM, CXL, DRAM, CXL]

    def test_bytes_on_node(self):
        allocation = self.alloc.allocate(
            units.kib(8), Interleaved((DRAM, CXL)))
        assert allocation.bytes_on_node(DRAM) == units.kib(4)
        assert allocation.bytes_on_node(CXL) == units.kib(4)

    def test_fractions_sum_to_one(self):
        policy = WeightedInterleave.from_ratio(DRAM, CXL, 9, 1)
        allocation = self.alloc.allocate(units.kib(40), policy)
        assert sum(allocation.node_fractions().values()) == pytest.approx(1.0)


class TestVectorizedFastPath:
    """The tiled fast path must agree with direct policy evaluation."""

    @settings(max_examples=25)
    @given(st.integers(min_value=1, max_value=30),
           st.integers(min_value=1, max_value=10),
           st.integers(min_value=1, max_value=300))
    def test_tile_matches_policy(self, dram_w, cxl_w, pages):
        policy = WeightedInterleave(((DRAM, dram_w), (CXL, cxl_w)))
        layout = PageAllocator._materialize(pages, policy)
        expected = [policy.node_for_page(i) for i in range(pages)]
        assert list(layout) == expected
