"""Property tests: allocator accounting under arbitrary alloc/free traces."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro import units
from repro.errors import AllocationError
from repro.topology import (
    Membind,
    MemoryKind,
    NumaNode,
    NumaTopology,
    PageAllocator,
    WeightedInterleave,
)

DRAM, CXL = 0, 1


def fresh_allocator() -> PageAllocator:
    return PageAllocator(NumaTopology(nodes=[
        NumaNode(DRAM, MemoryKind.DRAM_LOCAL, units.mib(4), cpus=2),
        NumaNode(CXL, MemoryKind.CXL, units.mib(2)),
    ]))


action = st.one_of(
    st.tuples(st.just("alloc"),
              st.integers(min_value=1, max_value=64),      # pages
              st.sampled_from([DRAM, CXL])),
    st.tuples(st.just("alloc-weighted"),
              st.integers(min_value=1, max_value=64),
              st.integers(min_value=1, max_value=8),        # dram weight
              st.integers(min_value=1, max_value=8)),       # cxl weight
    st.tuples(st.just("free"),
              st.integers(min_value=0, max_value=10)),      # index choice
)


class TestAllocatorAccounting:
    @settings(max_examples=40, deadline=None)
    @given(st.lists(action, max_size=40))
    def test_used_pages_always_consistent(self, actions):
        """Invariant: per-node usage equals the sum over live
        allocations, never negative, never above capacity."""
        allocator = fresh_allocator()
        live = []
        for entry in actions:
            if entry[0] == "alloc":
                _, pages, node = entry
                try:
                    live.append(allocator.allocate(
                        pages * units.kib(4), Membind(node)))
                except AllocationError:
                    pass                     # node full: acceptable
            elif entry[0] == "alloc-weighted":
                _, pages, dram_w, cxl_w = entry
                policy = WeightedInterleave(((DRAM, dram_w),
                                             (CXL, cxl_w)))
                try:
                    live.append(allocator.allocate(
                        pages * units.kib(4), policy))
                except AllocationError:
                    pass
            else:
                _, index = entry
                if live:
                    allocator.free(live.pop(index % len(live)))

            for node in (DRAM, CXL):
                expected = sum(a.node_histogram().get(node, 0)
                               for a in live)
                used = allocator.used_bytes(node) // units.kib(4)
                assert used == expected
                assert 0 <= used <= allocator.capacity_pages(node)

    @settings(max_examples=30, deadline=None)
    @given(st.integers(min_value=1, max_value=200),
           st.integers(min_value=1, max_value=20),
           st.integers(min_value=1, max_value=20))
    def test_allocation_layout_matches_policy_everywhere(self, pages,
                                                         dram_w, cxl_w):
        allocator = fresh_allocator()
        policy = WeightedInterleave(((DRAM, dram_w), (CXL, cxl_w)))
        allocation = allocator.allocate(pages * units.kib(4), policy)
        for page in range(allocation.num_pages):
            assert allocation.page_nodes[page] == \
                policy.node_for_page(page)

    @settings(max_examples=30, deadline=None)
    @given(st.integers(min_value=1, max_value=500))
    def test_free_restores_exactly(self, pages):
        allocator = fresh_allocator()
        before = {n: allocator.free_pages(n) for n in (DRAM, CXL)}
        allocation = allocator.allocate(pages * units.kib(4),
                                        Membind(DRAM))
        allocator.free(allocation)
        after = {n: allocator.free_pages(n) for n in (DRAM, CXL)}
        assert before == after
