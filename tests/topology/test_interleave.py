"""Placement policies: exact ratios over full cycles, paper settings."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import ConfigError
from repro.topology import (
    Interleaved,
    Membind,
    Preferred,
    WeightedInterleave,
)

DRAM, CXL = 0, 2


class TestMembind:
    def test_all_pages_one_node(self):
        policy = Membind(CXL)
        assert all(policy.node_for_page(i) == CXL for i in range(100))
        assert policy.fractions() == {CXL: 1.0}


class TestPreferred:
    def test_prefers_first_node(self):
        policy = Preferred(CXL, fallback_node_id=DRAM)
        assert policy.node_for_page(0) == CXL
        assert policy.nodes() == [CXL, DRAM]

    def test_same_node_rejected(self):
        with pytest.raises(ConfigError):
            Preferred(0, fallback_node_id=0)


class TestInterleaved:
    def test_round_robin(self):
        policy = Interleaved((DRAM, CXL))
        assert [policy.node_for_page(i) for i in range(4)] == [
            DRAM, CXL, DRAM, CXL]

    def test_even_fractions(self):
        policy = Interleaved((0, 1, 2))
        assert policy.fractions() == {0: pytest.approx(1 / 3),
                                      1: pytest.approx(1 / 3),
                                      2: pytest.approx(1 / 3)}

    def test_empty_rejected(self):
        with pytest.raises(ConfigError):
            Interleaved(())

    def test_duplicates_rejected(self):
        with pytest.raises(ConfigError):
            Interleaved((0, 0))


class TestWeightedInterleave:
    def test_paper_4_to_1_gives_20_percent_cxl(self):
        # §5: "we can allocate 20% of memory to CXL memory if we set the
        # DRAM:CXL ratio to 4:1"
        policy = WeightedInterleave.from_ratio(DRAM, CXL, 4, 1)
        assert policy.cxl_fraction(CXL) == pytest.approx(0.20)

    def test_paper_30_to_1_gives_3_23_percent(self):
        policy = WeightedInterleave.from_ratio(DRAM, CXL, 30, 1)
        assert policy.cxl_fraction(CXL) == pytest.approx(1 / 31)
        assert policy.cxl_fraction(CXL) == pytest.approx(0.0323, abs=1e-4)

    def test_paper_9_to_1_gives_10_percent(self):
        policy = WeightedInterleave.from_ratio(DRAM, CXL, 9, 1)
        assert policy.cxl_fraction(CXL) == pytest.approx(0.10)

    def test_cycle_layout(self):
        policy = WeightedInterleave.from_ratio(DRAM, CXL, 4, 1)
        cycle = [policy.node_for_page(i) for i in range(5)]
        assert cycle == [DRAM, DRAM, DRAM, DRAM, CXL]

    def test_ratio_is_reduced(self):
        policy = WeightedInterleave.from_ratio(DRAM, CXL, 8, 2)
        assert policy.cycle_length == 5

    def test_exact_count_over_any_cycle_multiple(self):
        policy = WeightedInterleave.from_ratio(DRAM, CXL, 9, 1)
        pages = [policy.node_for_page(i) for i in range(1000)]
        assert pages.count(CXL) == 100

    def test_from_cxl_fraction_half(self):
        policy = WeightedInterleave.from_cxl_fraction(DRAM, CXL, 0.5)
        assert policy.cxl_fraction(CXL) == pytest.approx(0.5)
        assert policy.cycle_length == 2

    def test_from_cxl_fraction_rejects_extremes(self):
        for bad in (0.0, 1.0, -0.1, 1.5):
            with pytest.raises(ConfigError):
                WeightedInterleave.from_cxl_fraction(DRAM, CXL, bad)

    def test_non_integer_weight_rejected(self):
        with pytest.raises(ConfigError):
            WeightedInterleave(((0, 1.5),))

    def test_zero_weight_rejected(self):
        with pytest.raises(ConfigError):
            WeightedInterleave(((0, 0),))

    def test_zero_ratio_term_rejected(self):
        with pytest.raises(ConfigError):
            WeightedInterleave.from_ratio(DRAM, CXL, 0, 1)

    @given(st.integers(min_value=1, max_value=50),
           st.integers(min_value=1, max_value=50))
    def test_fraction_matches_ratio(self, dram, cxl):
        policy = WeightedInterleave.from_ratio(DRAM, CXL, dram, cxl)
        assert policy.cxl_fraction(CXL) == pytest.approx(cxl / (dram + cxl))

    @given(st.floats(min_value=0.01, max_value=0.99))
    def test_from_fraction_close_to_target(self, fraction):
        policy = WeightedInterleave.from_cxl_fraction(DRAM, CXL, fraction)
        assert policy.cxl_fraction(CXL) == pytest.approx(fraction, abs=0.001)

    @given(st.integers(min_value=1, max_value=20),
           st.integers(min_value=1, max_value=20),
           st.integers(min_value=0, max_value=10_000))
    def test_counts_exact_over_cycles(self, dram, cxl, start_cycle):
        """Over any whole number of cycles the split is exactly N:M."""
        policy = WeightedInterleave.from_ratio(DRAM, CXL, dram, cxl)
        cycle = policy.cycle_length
        base = start_cycle * cycle
        pages = [policy.node_for_page(base + i) for i in range(cycle)]
        fracs = policy.fractions()
        assert pages.count(DRAM) == round(fracs[DRAM] * cycle)
        assert pages.count(CXL) == round(fracs[CXL] * cycle)
