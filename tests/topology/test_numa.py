"""NUMA node and topology invariants."""

import pytest

from repro import units
from repro.errors import ConfigError
from repro.topology import MemoryKind, NumaNode, NumaTopology


def three_node_topology() -> NumaTopology:
    """The paper's combined view: local DDR5, remote DDR5, CXL."""
    return NumaTopology(nodes=[
        NumaNode(0, MemoryKind.DRAM_LOCAL, units.gib(128), cpus=32,
                 label="DDR5-L8"),
        NumaNode(1, MemoryKind.DRAM_REMOTE, units.gib(128), cpus=32,
                 label="DDR5-R"),
        NumaNode(2, MemoryKind.CXL, units.gib(16), label="CXL"),
    ])


class TestNumaNode:
    def test_cxl_node_is_cpuless(self):
        node = NumaNode(2, MemoryKind.CXL, units.gib(16))
        assert node.is_cpuless

    def test_cxl_node_with_cpus_rejected(self):
        with pytest.raises(ConfigError):
            NumaNode(2, MemoryKind.CXL, units.gib(16), cpus=8)

    def test_zero_capacity_rejected(self):
        with pytest.raises(ConfigError):
            NumaNode(0, MemoryKind.DRAM_LOCAL, 0, cpus=1)

    def test_negative_id_rejected(self):
        with pytest.raises(ConfigError):
            NumaNode(-1, MemoryKind.DRAM_LOCAL, units.gib(1), cpus=1)


class TestNumaTopology:
    def setup_method(self):
        self.topo = three_node_topology()

    def test_lookup(self):
        assert self.topo.node(2).kind is MemoryKind.CXL
        assert 2 in self.topo
        assert 7 not in self.topo

    def test_unknown_node_raises(self):
        with pytest.raises(ConfigError):
            self.topo.node(9)

    def test_duplicate_ids_rejected(self):
        node = NumaNode(0, MemoryKind.DRAM_LOCAL, units.gib(1), cpus=1)
        with pytest.raises(ConfigError):
            NumaTopology(nodes=[node, node])

    def test_default_distances_self_is_10(self):
        for node in self.topo.nodes:
            assert self.topo.distance(node.node_id, node.node_id) == 10

    def test_cxl_is_farther_than_socket_hop(self):
        assert (self.topo.distance(0, 2) > self.topo.distance(0, 1) >
                self.topo.distance(0, 0))

    def test_cpu_and_cxl_node_partition(self):
        assert [n.node_id for n in self.topo.cpu_nodes] == [0, 1]
        assert [n.node_id for n in self.topo.cxl_nodes] == [2]

    def test_nearest_dram_from_cxl_prefers_either_socket(self):
        nearest = self.topo.nearest_dram(2)
        assert nearest.kind is not MemoryKind.CXL

    def test_nearest_dram_from_dram_is_self(self):
        assert self.topo.nearest_dram(0).node_id == 0

    def test_missing_distance_raises(self):
        with pytest.raises(ConfigError):
            self.topo.distance(0, 99)
