"""The cross-model validation suite itself must pass."""

import pytest

from repro import build_system, combined_testbed
from repro.validate import (
    cross_validate,
    validate_chase_bounds,
    validate_link_ceiling,
    validate_redis_capacity,
    validate_traffic_factors,
)


@pytest.fixture(scope="module")
def system():
    return build_system(combined_testbed())


class TestIndividualChecks:
    def test_link_ceiling(self):
        check = validate_link_ceiling()
        assert check.passed, check

    def test_traffic_factors(self):
        check = validate_traffic_factors()
        assert check.passed, check

    def test_redis_capacity(self, system):
        check = validate_redis_capacity(system)
        assert check.passed, check

    def test_chase_bounds(self):
        check = validate_chase_bounds()
        assert check.passed, check


class TestSuite:
    def test_all_checks_pass(self, system):
        checks = cross_validate(system)
        assert len(checks) == 4
        failing = [c for c in checks if not c.passed]
        assert not failing, "\n".join(str(c) for c in failing)

    def test_cli_validate_flag(self, capsys):
        from repro.experiments.runner import main
        assert main(["--validate"]) == 0
        out = capsys.readouterr().out
        assert "[PASS]" in out
