"""Hotness tracker: counting, decay, ranking."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import WorkloadError
from repro.tiering import HotnessTracker


class TestRecording:
    def test_counts_fold_in_at_epoch_end(self):
        tracker = HotnessTracker(10)
        tracker.record_accesses(np.array([3, 3, 3, 7]))
        assert tracker.heat(3) == 0.0      # not folded yet
        tracker.end_epoch()
        assert tracker.heat(3) == 3.0
        assert tracker.heat(7) == 1.0

    def test_out_of_range_rejected(self):
        tracker = HotnessTracker(10)
        with pytest.raises(WorkloadError):
            tracker.record_accesses(np.array([10]))
        with pytest.raises(WorkloadError):
            tracker.record_accesses(np.array([-1]))

    def test_empty_batch_is_noop(self):
        tracker = HotnessTracker(10)
        tracker.record_accesses(np.array([], dtype=np.int64))
        tracker.end_epoch()
        assert tracker.heat(0) == 0.0


class TestDecay:
    def test_heat_decays_geometrically(self):
        tracker = HotnessTracker(4, decay=0.5)
        tracker.record_accesses(np.array([0, 0, 0, 0]))
        tracker.end_epoch()
        tracker.end_epoch()      # nothing this epoch
        assert tracker.heat(0) == pytest.approx(2.0)
        tracker.end_epoch()
        assert tracker.heat(0) == pytest.approx(1.0)

    def test_zero_decay_forgets_instantly(self):
        tracker = HotnessTracker(4, decay=0.0)
        tracker.record_accesses(np.array([0]))
        tracker.end_epoch()
        tracker.end_epoch()
        assert tracker.heat(0) == 0.0

    def test_invalid_decay_rejected(self):
        with pytest.raises(WorkloadError):
            HotnessTracker(4, decay=1.0)
        with pytest.raises(WorkloadError):
            HotnessTracker(4, decay=-0.1)


class TestRanking:
    def make_warm_tracker(self) -> HotnessTracker:
        tracker = HotnessTracker(5)
        tracker.record_accesses(np.array([0] * 5 + [1] * 3 + [2] * 1))
        tracker.end_epoch()
        return tracker

    def test_hottest_order(self):
        tracker = self.make_warm_tracker()
        assert list(tracker.hottest(3)) == [0, 1, 2]

    def test_hottest_clamped_to_page_count(self):
        tracker = self.make_warm_tracker()
        assert len(tracker.hottest(100)) == 5

    def test_coldest_within_subset(self):
        tracker = self.make_warm_tracker()
        candidates = np.array([0, 1, 4])
        coldest = tracker.coldest_within(candidates, 2)
        assert list(coldest) == [4, 1]

    def test_is_hot_threshold(self):
        tracker = self.make_warm_tracker()
        assert tracker.is_hot(0, threshold=4.0)
        assert not tracker.is_hot(2, threshold=4.0)

    def test_heats_vectorized(self):
        tracker = self.make_warm_tracker()
        assert list(tracker.heats(np.array([0, 2]))) == [5.0, 1.0]


class TestProperties:
    @settings(max_examples=30, deadline=None)
    @given(st.lists(st.integers(min_value=0, max_value=15), min_size=1,
                    max_size=200))
    def test_total_heat_equals_total_accesses_first_epoch(self, accesses):
        tracker = HotnessTracker(16)
        tracker.record_accesses(np.array(accesses))
        tracker.end_epoch()
        total = sum(tracker.heat(p) for p in range(16))
        assert total == pytest.approx(len(accesses))

    @settings(max_examples=20, deadline=None)
    @given(st.lists(st.integers(min_value=0, max_value=15), min_size=5,
                    max_size=100))
    def test_hottest_is_sorted_by_heat(self, accesses):
        tracker = HotnessTracker(16)
        tracker.record_accesses(np.array(accesses))
        tracker.end_epoch()
        ranked = tracker.hottest(16)
        heats = [tracker.heat(int(p)) for p in ranked]
        assert heats == sorted(heats, reverse=True)
