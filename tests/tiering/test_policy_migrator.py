"""Tiering policies and the migration cost model."""

import numpy as np
import pytest

from repro import build_system, combined_testbed
from repro.errors import WorkloadError
from repro.tiering import (
    HotnessTracker,
    MigrationEngine,
    NoMigration,
    PageMigrator,
    TppLikePolicy,
)
from repro.tiering.policy import MigrationPlan


@pytest.fixture(scope="module")
def system():
    return build_system(combined_testbed())


def warm_tracker(hot_pages, num_pages=16, heat=10):
    tracker = HotnessTracker(num_pages)
    accesses = np.repeat(np.array(hot_pages), heat)
    tracker.record_accesses(accesses)
    tracker.end_epoch()
    return tracker


class TestNoMigration:
    def test_never_moves_anything(self):
        tracker = warm_tracker([0, 1, 2])
        on_dram = np.zeros(16, dtype=bool)
        plan = NoMigration().plan(tracker, on_dram, 8)
        assert plan.total_pages == 0


class TestTppLikePolicy:
    def test_promotes_hot_cxl_pages(self):
        tracker = warm_tracker([5, 6])
        on_dram = np.zeros(16, dtype=bool)
        plan = TppLikePolicy().plan(tracker, on_dram, 8)
        assert set(plan.promote) == {5, 6}
        assert plan.demote.size == 0       # DRAM has room

    def test_ignores_hot_pages_already_on_dram(self):
        tracker = warm_tracker([5])
        on_dram = np.zeros(16, dtype=bool)
        on_dram[5] = True
        plan = TppLikePolicy().plan(tracker, on_dram, 8)
        assert 5 not in plan.promote

    def test_cold_pages_not_promoted(self):
        tracker = warm_tracker([5], heat=1)    # heat 1 < threshold 2
        on_dram = np.zeros(16, dtype=bool)
        plan = TppLikePolicy(promotion_threshold=2.0).plan(
            tracker, on_dram, 8)
        assert plan.promote.size == 0

    def test_demotes_coldest_when_dram_full(self):
        tracker = warm_tracker([5, 6], num_pages=16)
        on_dram = np.zeros(16, dtype=bool)
        on_dram[[0, 1]] = True                  # cold DRAM residents
        plan = TppLikePolicy().plan(tracker, on_dram,
                                    dram_capacity_pages=2)
        assert set(plan.promote) == {5, 6}
        assert plan.demote.size == 2
        assert set(plan.demote) <= {0, 1}

    def test_migration_cap_respected(self):
        tracker = warm_tracker(list(range(10)))
        on_dram = np.zeros(16, dtype=bool)
        plan = TppLikePolicy(max_migrations_per_epoch=3).plan(
            tracker, on_dram, 16)
        assert plan.promote.size == 3

    def test_bad_parameters_rejected(self):
        with pytest.raises(WorkloadError):
            TppLikePolicy(promotion_threshold=0.0)
        with pytest.raises(WorkloadError):
            TppLikePolicy(max_migrations_per_epoch=0)

    def test_mask_size_mismatch_rejected(self):
        tracker = warm_tracker([0])
        with pytest.raises(WorkloadError):
            TppLikePolicy().plan(tracker, np.zeros(4, dtype=bool), 2)


class TestPageMigrator:
    def make_plan(self, promote=0, demote=0) -> MigrationPlan:
        return MigrationPlan(
            promote=np.arange(promote, dtype=np.int64),
            demote=np.arange(demote, dtype=np.int64))

    def test_empty_plan_is_free(self, system):
        migrator = PageMigrator(system)
        assert migrator.migration_time_ns(self.make_plan()) == 0.0

    def test_time_scales_with_pages(self, system):
        migrator = PageMigrator(system)
        few = migrator.migration_time_ns(self.make_plan(promote=10))
        many = migrator.migration_time_ns(self.make_plan(promote=100))
        assert many == pytest.approx(10 * few, rel=0.01)

    def test_dsa_beats_cpu_memcpy(self, system):
        """§6: DSA is the recommended bulk mover."""
        plan = self.make_plan(promote=256, demote=256)
        dsa = PageMigrator(system, engine=MigrationEngine.DSA_ASYNC)
        cpu = PageMigrator(system, engine=MigrationEngine.CPU_MEMCPY)
        assert dsa.migration_time_ns(plan) < cpu.migration_time_ns(plan)

    def test_dsa_frees_the_cpu(self, system):
        dsa = PageMigrator(system, engine=MigrationEngine.DSA_ASYNC)
        cpu = PageMigrator(system, engine=MigrationEngine.CPU_MOVDIR)
        assert dsa.cpu_busy_fraction() < cpu.cpu_busy_fraction()

    def test_demotions_charged_too(self, system):
        migrator = PageMigrator(system)
        promote_only = migrator.migration_time_ns(
            self.make_plan(promote=64))
        both = migrator.migration_time_ns(
            self.make_plan(promote=64, demote=64))
        assert both > promote_only

    def test_bad_page_size_rejected(self, system):
        with pytest.raises(WorkloadError):
            PageMigrator(system, page_bytes=0)
