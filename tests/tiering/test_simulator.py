"""End-to-end tiering: the paper's baseline claim, made executable."""

import pytest

from repro import build_system, combined_testbed
from repro.errors import WorkloadError
from repro.tiering import (
    MigrationEngine,
    NoMigration,
    PageMigrator,
    TieringSimulator,
    TppLikePolicy,
)


@pytest.fixture(scope="module")
def system():
    return build_system(combined_testbed())


@pytest.fixture(scope="module")
def simulator(system):
    return TieringSimulator(system, num_pages=4096,
                            dram_capacity_pages=1024,
                            accesses_per_epoch=20_000,
                            shift_every=8)


@pytest.fixture(scope="module")
def migrator(system):
    return PageMigrator(system, engine=MigrationEngine.DSA_ASYNC)


@pytest.fixture(scope="module")
def static_stats(simulator, migrator):
    return simulator.run(NoMigration(), migrator, epochs=20)


@pytest.fixture(scope="module")
def tpp_stats(simulator, migrator):
    policy = TppLikePolicy(max_migrations_per_epoch=512)
    return simulator.run(policy, migrator, epochs=20)


class TestBaselineClaim:
    def test_tiering_beats_weighted_interleave(self, simulator,
                                               static_stats, tpp_stats):
        """§5: a tiering policy 'should, at the very least, perform
        equally well' vs weighted round-robin — TPP-like clearly does."""
        static = simulator.steady_state_ns(static_stats)
        tpp = simulator.steady_state_ns(tpp_stats)
        assert tpp < 0.8 * static

    def test_static_baseline_never_migrates(self, static_stats):
        assert all(s.migrated_pages == 0 for s in static_stats)
        assert all(s.migration_ns == 0.0 for s in static_stats)

    def test_tpp_converges_after_warmup(self, tpp_stats):
        first = tpp_stats[0].effective_ns
        settled = tpp_stats[5].effective_ns
        assert settled < 0.7 * first

    def test_hot_set_shift_causes_latency_spike(self, simulator,
                                                tpp_stats):
        """Epoch 8 moves the hot set: latency spikes, then re-converges."""
        before = tpp_stats[7].effective_ns
        spike = tpp_stats[8].effective_ns
        recovered = tpp_stats[13].effective_ns
        assert spike > 1.2 * before
        assert recovered < 0.8 * spike

    def test_effective_latency_bounded_by_tiers(self, system, tpp_stats):
        dram = (system.edge_ns()
                + system.backend_for_node(0).idle_read_ns())
        cxl = (system.edge_ns()
               + system.backend_for_node(
                   system.cxl_node_id).idle_read_ns())
        for stat in tpp_stats:
            assert dram <= stat.avg_access_ns <= cxl


class TestSamplingPolicy:
    """AutoNUMA-style sampling: better than static, worse than TPP."""

    @pytest.fixture(scope="class")
    def sampling_stats(self, simulator, migrator):
        from repro.tiering import SamplingPolicy
        policy = SamplingPolicy(max_migrations_per_epoch=512)
        return simulator.run(policy, migrator, epochs=20)

    def test_ordering_static_sampling_tpp(self, simulator, static_stats,
                                          tpp_stats, sampling_stats):
        static = simulator.steady_state_ns(static_stats)
        sampling = simulator.steady_state_ns(sampling_stats)
        tpp = simulator.steady_state_ns(tpp_stats)
        assert tpp < sampling < static

    def test_sampling_converges_slower_than_tpp(self, tpp_stats,
                                                sampling_stats):
        """Partial visibility per epoch delays convergence."""
        assert sampling_stats[2].effective_ns > tpp_stats[2].effective_ns

    def test_sampling_validation(self):
        from repro.tiering import SamplingPolicy
        with pytest.raises(WorkloadError):
            SamplingPolicy(sample_rate=0.0)
        with pytest.raises(WorkloadError):
            SamplingPolicy(sample_rate=1.5)
        with pytest.raises(WorkloadError):
            SamplingPolicy(promotion_threshold=0.0)

    def test_sampling_respects_capacity(self, simulator, migrator,
                                        sampling_stats):
        # The run itself asserts capacity; reaching here means no
        # overflow occurred across 20 epochs.
        assert len(sampling_stats) == 20


class TestMigrationEngines:
    def test_dsa_migrator_has_lower_overhead(self, system, simulator):
        policy = TppLikePolicy(max_migrations_per_epoch=512)
        dsa = simulator.run(policy, PageMigrator(
            system, engine=MigrationEngine.DSA_ASYNC), epochs=10)
        cpu = simulator.run(policy, PageMigrator(
            system, engine=MigrationEngine.CPU_MEMCPY), epochs=10)
        dsa_migration = sum(s.migration_ns for s in dsa)
        cpu_migration = sum(s.migration_ns for s in cpu)
        assert dsa_migration < cpu_migration


class TestSimulatorValidation:
    def test_dataset_must_exceed_dram(self, system):
        with pytest.raises(WorkloadError):
            TieringSimulator(system, num_pages=100,
                             dram_capacity_pages=100)

    def test_initial_placement_respects_capacity(self, simulator):
        on_dram = simulator.initial_placement()
        assert int(on_dram.sum()) <= simulator.dram_capacity_pages

    def test_zero_epochs_rejected(self, simulator, migrator):
        with pytest.raises(WorkloadError):
            simulator.run(NoMigration(), migrator, epochs=0)

    def test_latency_series_export(self, simulator, tpp_stats):
        series = TieringSimulator.latency_series(tpp_stats, "tpp")
        assert len(series) == len(tpp_stats)
        assert series.name == "tpp"

    def test_steady_state_needs_epochs(self, simulator, tpp_stats):
        with pytest.raises(WorkloadError):
            simulator.steady_state_ns(tpp_stats[:3], skip=4)

    def test_determinism(self, system, simulator, migrator):
        policy = TppLikePolicy(max_migrations_per_epoch=128)
        a = simulator.run(policy, migrator, epochs=6)
        b = simulator.run(policy, migrator, epochs=6)
        assert [s.effective_ns for s in a] == [s.effective_ns for s in b]
