"""repro-report: deterministic rendering and the baseline regression gate.

Two acceptance criteria from the PR are pinned here:

* the rendered report is byte-identical across two runs over the same
  inputs (``test_report_byte_identical_across_runs``);
* ``--baseline`` exits non-zero when a bench metric regresses past the
  threshold (``test_baseline_gate_exits_nonzero_on_bench_regression``).
"""

import json

from repro.obs import EXIT_FAILED_CHECKS, EXIT_OK, append_record, run_record
from repro.obs.report import (
    bench_entries,
    bench_metric_trends,
    build_baseline,
    build_report,
    find_regressions,
    load_bench_histories,
    load_experiments,
    main,
    markdown_to_html,
)


def experiment_json(eid="fig3", passed=True, checks=None):
    if checks is None:
        checks = [{"claim": "latency ratio in range", "passed": passed,
                   "measured": "2.5x"}]
    return {"experiment_id": eid, "passed": passed, "checks": checks}


def write_results(tmp_path, experiments):
    results = tmp_path / "results"
    results.mkdir(exist_ok=True)
    for data in experiments:
        (results / f"{data['experiment_id']}.json").write_text(
            json.dumps(data))
    return results


def write_bench(tmp_path, label="local", serial_s=5.0, speedup=2.0,
                history=None):
    entry = {"label": label,
             "figures": {"fig3": {"serial_s": serial_s}},
             "suite": {"serial_s": serial_s, "parallel_s": serial_s / 2,
                       "speedup": speedup},
             "engine": {"e2e_read_sweep_s": 0.5}}
    payload = {"label": label, "history": history} if history is not None \
        else entry
    (tmp_path / f"BENCH_{label}.json").write_text(json.dumps(payload))
    return entry


def write_ledger(tmp_path):
    path = tmp_path / "runs.jsonl"
    for wall in (0.6, 0.4):
        append_record(run_record(
            tool="repro-experiments", argv=["fig3"], ids=["fig3"],
            started_at="2026-08-06T00:00:00Z", wall_s=wall,
            rev="abc1234",
            verdicts={"fig3": {"passed": True, "wall_s": wall,
                               "cached": False}}), path)
    return path


class TestLoading:
    def test_load_experiments_skips_non_verdict_json(self, tmp_path):
        results = write_results(tmp_path, [experiment_json()])
        (results / "fig3.metrics.json").write_text("{}")
        (results / "fig3.profile.json").write_text("{}")
        (results / "junk.json").write_text("not json")
        (results / "other.json").write_text('{"random": true}')
        assert list(load_experiments(results)) == ["fig3"]

    def test_bench_entries_handles_both_shapes(self):
        legacy = {"label": "x", "suite": {"serial_s": 1.0}}
        assert bench_entries(legacy) == [legacy]
        wrapped = {"label": "x", "history": [legacy, legacy]}
        assert bench_entries(wrapped) == [legacy, legacy]

    def test_bench_trends_flatten_history_in_order(self, tmp_path):
        old = write_bench(tmp_path, serial_s=6.0)
        new = dict(old, suite={"serial_s": 4.0, "parallel_s": 2.0,
                               "speedup": 2.0})
        write_bench(tmp_path, history=[old, new])
        trends = bench_metric_trends(load_bench_histories(tmp_path))
        assert trends["local.suite.serial_s"] == [6.0, 4.0]
        assert trends["local.figures.fig3.serial_s"] == [6.0, 6.0]
        assert "local.cpus" not in trends      # host metadata excluded


class TestDeterminism:
    def test_report_byte_identical_across_runs(self, tmp_path, capsys,
                                               monkeypatch):
        """Acceptance: same inputs => byte-identical md and html."""
        write_results(tmp_path, [experiment_json("fig3"),
                                 experiment_json("table1")])
        write_bench(tmp_path)
        ledger = write_ledger(tmp_path)
        monkeypatch.chdir(tmp_path)

        def render(tag):
            out_md = tmp_path / f"{tag}.md"
            out_html = tmp_path / f"{tag}.html"
            assert main(["--results", str(tmp_path / "results"),
                         "--ledger", str(ledger),
                         "--bench", str(tmp_path),
                         "--out", str(out_md),
                         "--html", str(out_html)]) == EXIT_OK
            capsys.readouterr()
            return out_md.read_bytes(), out_html.read_bytes()

        assert render("first") == render("second")

    def test_report_contains_all_sections(self, tmp_path):
        report = build_report(
            experiments={"fig3": experiment_json()},
            metrics={"fig3": {"m": 1}},
            ledger=[json.loads(line) for line
                    in write_ledger(tmp_path).read_text().splitlines()],
            bench_trends={"local.suite.serial_s": [6.0, 4.0]})
        for heading in ("# repro observability report", "## Experiments",
                        "## Run ledger", "## Bench trends",
                        "## Metrics snapshots"):
            assert heading in report
        assert "PASS" in report
        assert "2026-08-06T00:00:00Z" in report

    def test_failing_checks_listed(self):
        report = build_report(
            experiments={"fig3": experiment_json(passed=False)},
            metrics={}, ledger=[], bench_trends={})
        assert "FAIL" in report
        assert "Failing checks:" in report
        assert "latency ratio in range" in report


class TestBaseline:
    def test_write_baseline_round_trips(self, tmp_path, capsys):
        write_results(tmp_path, [experiment_json()])
        write_bench(tmp_path, serial_s=5.0)
        target = tmp_path / "baseline.json"
        assert main(["--results", str(tmp_path / "results"),
                     "--bench", str(tmp_path),
                     "--ledger", str(tmp_path / "none.jsonl"),
                     "--write-baseline", str(target)]) == EXIT_OK
        capsys.readouterr()
        baseline = json.loads(target.read_text())
        assert baseline["schema"] == 1
        assert baseline["experiments"]["fig3"]["passed"] is True
        assert baseline["bench"]["local.suite.serial_s"] == 5.0

    def test_baseline_gate_exits_nonzero_on_bench_regression(
            self, tmp_path, capsys):
        """Acceptance: injected bench regression => exit 1."""
        results = write_results(tmp_path, [experiment_json()])
        write_bench(tmp_path, serial_s=5.0)
        target = tmp_path / "baseline.json"
        common = ["--results", str(results), "--bench", str(tmp_path),
                  "--ledger", str(tmp_path / "none.jsonl")]
        assert main(common + ["--write-baseline", str(target)]) == EXIT_OK
        # clean comparison first
        assert main(common + ["--baseline", str(target),
                              "--out", str(tmp_path / "r.md")]) == EXIT_OK
        # inject: serial seconds double (past the 10% default threshold)
        write_bench(tmp_path, serial_s=10.0)
        code = main(common + ["--baseline", str(target),
                              "--out", str(tmp_path / "r.md")])
        capsys.readouterr()
        assert code == EXIT_FAILED_CHECKS
        assert "REGRESSION: bench local.suite.serial_s" \
            in (tmp_path / "r.md").read_text()

    def test_check_flip_is_a_regression(self, tmp_path, capsys):
        results = write_results(tmp_path, [experiment_json(passed=True)])
        target = tmp_path / "baseline.json"
        common = ["--results", str(results),
                  "--bench", str(tmp_path / "nobench"),
                  "--ledger", str(tmp_path / "none.jsonl")]
        assert main(common + ["--write-baseline", str(target)]) == EXIT_OK
        write_results(tmp_path, [experiment_json(passed=False)])
        code = main(common + ["--baseline", str(target),
                              "--out", str(tmp_path / "r.md")])
        err = capsys.readouterr().err
        assert code == EXIT_FAILED_CHECKS
        assert "regression" in err

    def test_speedup_is_higher_is_better(self):
        baseline = {"schema": 1, "experiments": {},
                    "bench": {"local.suite.speedup": 2.0,
                              "local.suite.serial_s": 5.0}}
        # speedup halves (bad), serial_s halves (good)
        regressions = find_regressions(
            {}, {"local.suite.speedup": [1.0],
                 "local.suite.serial_s": [2.5]},
            baseline, threshold_pct=10.0)
        assert len(regressions) == 1
        assert "speedup" in regressions[0]

    def test_missing_metric_or_experiment_skipped(self):
        baseline = {"schema": 1,
                    "experiments": {"fig9": {"passed": True,
                                             "checks": {}}},
                    "bench": {"local.suite.serial_s": 5.0}}
        assert find_regressions({}, {}, baseline,
                                threshold_pct=10.0) == []

    def test_within_threshold_is_clean(self):
        baseline = {"schema": 1, "experiments": {},
                    "bench": {"local.suite.serial_s": 5.0}}
        assert find_regressions(
            {}, {"local.suite.serial_s": [5.4]}, baseline,
            threshold_pct=10.0) == []

    def test_bad_baseline_is_exit_2(self, tmp_path, capsys):
        assert main(["--results", str(tmp_path),
                     "--ledger", str(tmp_path / "none.jsonl"),
                     "--bench", str(tmp_path),
                     "--baseline", str(tmp_path / "missing.json")]) == 2
        (tmp_path / "bad.json").write_text('{"schema": 99}')
        assert main(["--results", str(tmp_path),
                     "--ledger", str(tmp_path / "none.jsonl"),
                     "--bench", str(tmp_path),
                     "--baseline", str(tmp_path / "bad.json")]) == 2
        capsys.readouterr()

    def test_baseline_round_trip_with_build_baseline(self):
        experiments = {"fig3": experiment_json()}
        trends = {"local.suite.serial_s": [6.0, 5.0]}
        baseline = build_baseline(experiments, trends)
        assert baseline["bench"]["local.suite.serial_s"] == 5.0
        assert find_regressions(experiments, trends, baseline,
                                threshold_pct=10.0) == []


class TestHtml:
    def test_tables_bullets_code_and_escaping(self):
        markdown = ("# Title\n\n| a | b |\n|---|---|\n| 1 | `x<y` |\n\n"
                    "- REGRESSION: bench x: 1 -> 2\n\nplain text\n")
        out = markdown_to_html(markdown)
        assert "<h1>Title</h1>" in out
        assert "<th>a</th>" in out
        assert "<td>1</td>" in out
        assert "<code>x&lt;y</code>" in out
        assert "<li>REGRESSION: bench x: 1 -&gt; 2</li>" in out
        assert "<p>plain text</p>" in out
        assert out.startswith("<!DOCTYPE html>")

    def test_html_is_deterministic(self):
        markdown = "# T\n\n| a |\n|---|\n| 1 |\n"
        assert markdown_to_html(markdown) == markdown_to_html(markdown)


class TestCliArgs:
    def test_bad_flags_are_exit_2(self, tmp_path, capsys):
        assert main(["--results", str(tmp_path), "--threshold", "-1",
                     "--ledger", str(tmp_path / "n.jsonl")]) == 2
        assert main(["--results", str(tmp_path), "--last", "0",
                     "--ledger", str(tmp_path / "n.jsonl")]) == 2
        capsys.readouterr()

    def test_empty_inputs_still_render(self, tmp_path, capsys):
        assert main(["--results", str(tmp_path / "nope"),
                     "--ledger", str(tmp_path / "none.jsonl"),
                     "--bench", str(tmp_path / "nobench")]) == EXIT_OK
        out = capsys.readouterr().out
        assert "No saved experiment JSON found." in out
        assert "No ledger records found." in out
        assert "No BENCH_*.json files found." in out
