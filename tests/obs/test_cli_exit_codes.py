"""The consolidated CLI exit-code contract, pinned across both CLIs.

Bad arguments exit 2 (``EXIT_BAD_ARGS``); runs that complete but fail
their shape checks exit 1 (``EXIT_FAILED_CHECKS``); clean runs exit 0.
Every error path goes through :meth:`repro.obs.RunLog.error`, so stderr
always carries a machine-parseable ``<tool> error error msg=...`` line.
"""

import pytest

from repro.analysis.compare import ShapeCheck
from repro.experiments.registry import (
    REGISTRY,
    Experiment,
    ExperimentResult,
)
from repro.obs import RunLog


def failing_experiment(eid="fake-fail"):
    def runner(fast):
        return ExperimentResult(
            experiment_id=eid, title="always fails", rendered="x",
            checks=[ShapeCheck("never true", False, "0")])

    return Experiment(eid, "always fails", "test", runner)


def last_error_line(err):
    lines = [line for line in err.splitlines()
             if " error error " in line]
    assert lines, f"no RunLog error line in stderr: {err!r}"
    return RunLog.parse_line(lines[-1])


class TestExperimentsCli:
    def test_unknown_id_is_exit_2(self, capsys):
        from repro.experiments.runner import main

        assert main(["no-such-figure"]) == 2
        tool, level, event, fields = last_error_line(
            capsys.readouterr().err)
        assert tool == "repro-experiments"
        assert "no-such-figure" in fields["msg"]
        assert "available" in fields

    def test_bad_jobs_is_exit_2(self, capsys):
        from repro.experiments.runner import main

        assert main(["table1", "--jobs", "0"]) == 2
        capsys.readouterr()

    def test_bad_faults_spec_is_exit_2(self, capsys):
        from repro.experiments.runner import main

        assert main(["degraded-cxl", "--faults", "nonsense=spec=bad"]) \
            == 2
        capsys.readouterr()

    def test_fault_refusing_experiment_is_exit_2(self, capsys):
        from repro.experiments.runner import main

        assert main(["table1", "--faults", "crc=0.01"]) == 2
        assert "do not accept a fault plan" \
            in capsys.readouterr().err

    def test_failing_checks_are_exit_1(self, monkeypatch, capsys):
        from repro.experiments.runner import main

        monkeypatch.setitem(REGISTRY, "fake-fail", failing_experiment())
        assert main(["fake-fail", "--no-cache"]) == 1
        captured = capsys.readouterr()
        assert "failing shape checks" in captured.out
        tool, level, event, fields = last_error_line(captured.err)
        assert tool == "repro-experiments"

    def test_clean_run_is_exit_0(self, capsys):
        from repro.experiments.runner import main

        assert main(["table1", "--no-cache"]) == 0
        assert " error " not in capsys.readouterr().err


class TestMemoCli:
    def test_unknown_scheme_is_exit_2(self, capsys):
        from repro.memo.cli import main

        with pytest.raises(SystemExit) as excinfo:
            main(["latency", "--scheme", "HBM"])
        assert excinfo.value.code == 2
        tool, level, event, fields = last_error_line(
            capsys.readouterr().err)
        assert tool == "memo"
        assert "HBM" in fields["msg"]

    def test_clean_run_is_exit_0(self, capsys):
        from repro.memo.cli import main

        assert main(["latency"]) == 0
        capsys.readouterr()
