"""bench_to_json --append: bounded history + legacy-shape migration."""

import importlib.util
import json
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent.parent
_SPEC = importlib.util.spec_from_file_location(
    "bench_to_json", REPO_ROOT / "benchmarks" / "bench_to_json.py")
bench_to_json = importlib.util.module_from_spec(_SPEC)
_SPEC.loader.exec_module(bench_to_json)

append_history = bench_to_json.append_history


def entry(serial_s=5.0, label="local"):
    return {"label": label, "recorded_at": "2026-08-06T00:00:00Z",
            "figures": {"fig3": {"serial_s": serial_s}},
            "suite": {"serial_s": serial_s}}


class TestAppendHistory:
    def test_fresh_file_starts_history(self, tmp_path):
        out = append_history(tmp_path / "BENCH_x.json", entry(),
                             limit=20)
        assert out["label"] == "local"
        assert [e["suite"]["serial_s"] for e in out["history"]] == [5.0]

    def test_history_file_gains_entry_newest_last(self, tmp_path):
        path = tmp_path / "BENCH_x.json"
        path.write_text(json.dumps(
            {"label": "local", "history": [entry(1.0), entry(2.0)]}))
        out = append_history(path, entry(3.0), limit=20)
        assert [e["suite"]["serial_s"] for e in out["history"]] \
            == [1.0, 2.0, 3.0]

    def test_legacy_single_entry_file_migrates(self, tmp_path):
        path = tmp_path / "BENCH_x.json"
        legacy = entry(7.0)
        path.write_text(json.dumps(legacy))
        out = append_history(path, entry(8.0), limit=20)
        assert out["history"][0] == legacy
        assert out["history"][1]["suite"]["serial_s"] == 8.0

    def test_limit_keeps_newest(self, tmp_path):
        path = tmp_path / "BENCH_x.json"
        history = [entry(float(n)) for n in range(5)]
        path.write_text(json.dumps({"label": "local",
                                    "history": history}))
        out = append_history(path, entry(99.0), limit=3)
        assert [e["suite"]["serial_s"] for e in out["history"]] \
            == [3.0, 4.0, 99.0]

    def test_unreadable_file_starts_fresh(self, tmp_path):
        path = tmp_path / "BENCH_x.json"
        path.write_text("{broken json")
        out = append_history(path, entry(), limit=20)
        assert len(out["history"]) == 1

    def test_non_dict_history_items_dropped(self, tmp_path):
        path = tmp_path / "BENCH_x.json"
        path.write_text(json.dumps(
            {"label": "local", "history": [entry(1.0), "junk", 3]}))
        out = append_history(path, entry(2.0), limit=20)
        assert [e["suite"]["serial_s"] for e in out["history"]] \
            == [1.0, 2.0]


class TestCli:
    def test_append_flag_builds_real_history(self, tmp_path, capsys):
        out = tmp_path / "BENCH_t.json"
        argv = ["--label", "t", "--ids", "table1", "--repeats", "1",
                "--jobs", "1", "--out", str(out), "--append"]
        assert bench_to_json.main(argv) == 0
        assert bench_to_json.main(argv) == 0
        capsys.readouterr()
        data = json.loads(out.read_text())
        assert data["label"] == "t"
        assert len(data["history"]) == 2
        for item in data["history"]:
            assert "suite" in item and "figures" in item

    def test_without_append_overwrites(self, tmp_path, capsys):
        out = tmp_path / "BENCH_t.json"
        argv = ["--label", "t", "--ids", "table1", "--repeats", "1",
                "--jobs", "1", "--out", str(out)]
        assert bench_to_json.main(argv) == 0
        capsys.readouterr()
        data = json.loads(out.read_text())
        assert "history" not in data
        assert "suite" in data

    def test_bad_history_limit_is_exit_2(self, capsys):
        assert bench_to_json.main(
            ["--label", "t", "--history-limit", "0"]) == 2
        assert "history-limit" in capsys.readouterr().err
