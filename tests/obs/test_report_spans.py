"""Report-side span handling: loading, rendering, and the
oversubscription advisory (docs/OBSERVABILITY.md)."""

import json

import pytest

from repro.obs.report import (
    build_report,
    find_regressions,
    load_experiments,
    load_spans,
    markdown_to_html,
)
from repro.telemetry.spans import SpanConfig, SpanRecorder


def _span_payload():
    recorder = SpanRecorder(SpanConfig(exemplars=2))
    for i in range(10):
        recorder.record(i, i * 100.0,
                        [("client.wait", 40.0 + i), ("kv.cpu", 60.0)])
    return {"config": {"exemplars": 2, "windows": 0},
            "points": {"point-a": recorder.export()}}


class TestLoadSpans:
    def test_loads_spans_files_only(self, tmp_path):
        payload = _span_payload()
        (tmp_path / "figX.spans.json").write_text(json.dumps(payload))
        (tmp_path / "figX.spans.trace.json").write_text(
            json.dumps({"traceEvents": []}))
        (tmp_path / "figX.json").write_text(json.dumps(
            {"experiment_id": "figX", "checks": [], "passed": True}))
        spans = load_spans(tmp_path)
        assert list(spans) == ["figX"]
        assert spans["figX"]["points"]

    def test_span_files_do_not_pollute_experiments(self, tmp_path):
        (tmp_path / "figX.spans.json").write_text(
            json.dumps(_span_payload()))
        (tmp_path / "figX.spans.trace.json").write_text(
            json.dumps({"traceEvents": []}))
        assert load_experiments(tmp_path) == {}

    def test_corrupt_file_skipped(self, tmp_path):
        (tmp_path / "bad.spans.json").write_text("{nope")
        assert load_spans(tmp_path) == {}


class TestTailAttributionSection:
    def _report(self, spans):
        return build_report(experiments={}, metrics={}, ledger=[],
                            bench_trends={}, spans=spans)

    def test_section_renders_breakdown_and_waterfalls(self):
        report = self._report({"figX": _span_payload()})
        assert "## Tail attribution" in report
        assert "### figX" in report
        assert "client.wait" in report
        assert "request #" in report

    def test_no_spans_no_section(self):
        assert "Tail attribution" not in self._report({})

    def test_html_renders_code_fences_as_pre(self):
        html = markdown_to_html(self._report({"figX": _span_payload()}))
        assert "<pre>" in html
        assert "```" not in html


class TestOversubscriptionAdvisory:
    BASELINE = {"schema": 1, "experiments": {},
                "bench": {"host.suite.speedup": 1.8,
                          "host.suite.serial_s": 10.0}}

    def test_speedup_below_one_becomes_advisory(self):
        advisories: list = []
        regressions = find_regressions(
            {}, {"host.suite.speedup": [0.8],
                 "host.suite.serial_s": [10.0]},
            self.BASELINE, threshold_pct=10.0, advisories=advisories)
        assert regressions == []
        assert len(advisories) == 1
        assert "oversubscribed" in advisories[0]

    def test_speedup_drop_above_one_still_regresses(self):
        advisories: list = []
        regressions = find_regressions(
            {}, {"host.suite.speedup": [1.2]}, self.BASELINE,
            threshold_pct=10.0, advisories=advisories)
        assert advisories == []
        assert len(regressions) == 1

    def test_without_advisories_list_behavior_unchanged(self):
        regressions = find_regressions(
            {}, {"host.suite.speedup": [0.8]}, self.BASELINE,
            threshold_pct=10.0)
        assert len(regressions) == 1

    def test_non_suite_speedup_is_not_reclassified(self):
        baseline = {"schema": 1, "experiments": {},
                    "bench": {"host.engine.speedup": 1.8}}
        advisories: list = []
        regressions = find_regressions(
            {}, {"host.engine.speedup": [0.8]}, baseline,
            threshold_pct=10.0, advisories=advisories)
        assert advisories == []
        assert len(regressions) == 1

    def test_report_renders_advisories_as_non_failing(self):
        report = build_report(
            experiments={}, metrics={}, ledger=[], bench_trends={},
            regressions=[], baseline_name="base.json",
            advisories=["bench host.suite.speedup: 0.8 < 1 — "
                        "oversubscribed"])
        assert "ADVISORY" in report
        assert "No regressions against the baseline." in report


class TestCliGate:
    def test_advisory_does_not_fail_the_gate(self, tmp_path, capsys,
                                             monkeypatch):
        from repro.obs.report import main

        monkeypatch.setenv("REPRO_LEDGER_PATH",
                           str(tmp_path / "runs.jsonl"))
        bench = {"label": "host", "history": [
            {"suite": {"speedup": 0.8, "serial_s": 10.0}}]}
        (tmp_path / "BENCH_host.json").write_text(json.dumps(bench))
        baseline = {"schema": 1, "experiments": {},
                    "bench": {"host.suite.speedup": 1.8,
                              "host.suite.serial_s": 10.0}}
        (tmp_path / "base.json").write_text(json.dumps(baseline))
        code = main(["--results", str(tmp_path / "results"),
                     "--bench", str(tmp_path),
                     "--baseline", str(tmp_path / "base.json")])
        out = capsys.readouterr().out
        assert code == 0
        assert "ADVISORY" in out
        assert "REGRESSION" not in out
