"""RunLog: leveled machine-parseable stderr events + exit-code contract."""

import io

import pytest

from repro.errors import ReproError
from repro.obs import EXIT_BAD_ARGS, EXIT_FAILED_CHECKS, EXIT_OK, RunLog


def make_log(level="info"):
    stream = io.StringIO()
    return RunLog("tool", level=level, stream=stream), stream


class TestFormat:
    def test_basic_line_shape(self):
        log, stream = make_log()
        log.info("run-start", ids="fig3", jobs=2)
        assert stream.getvalue() == "tool info run-start ids=fig3 jobs=2\n"

    def test_values_with_spaces_are_quoted(self):
        log, stream = make_log()
        log.info("e", msg="two words")
        assert 'msg="two words"' in stream.getvalue()

    def test_none_bool_float_formatting(self):
        log, stream = make_log()
        log.info("e", a=None, b=True, c=False, d=0.123456789)
        line = stream.getvalue().strip()
        assert "a=null" in line
        assert "b=true" in line and "c=false" in line
        assert "d=0.123457" in line          # .6g

    def test_parse_line_round_trips(self):
        log, stream = make_log()
        log.warn("cache-miss", id="fig6", note="not in cache")
        tool, level, event, fields = RunLog.parse_line(
            stream.getvalue().strip())
        assert (tool, level, event) == ("tool", "warn", "cache-miss")
        assert fields == {"id": "fig6", "note": "not in cache"}

    def test_parse_rejects_non_runlog_line(self):
        with pytest.raises(ReproError):
            RunLog.parse_line("just some text")


class TestLevels:
    def test_below_level_is_dropped(self):
        log, stream = make_log(level="warn")
        log.info("hidden")
        log.debug("hidden")
        log.warn("shown")
        lines = stream.getvalue().splitlines()
        assert len(lines) == 1 and "shown" in lines[0]

    def test_bad_level_rejected(self):
        with pytest.raises(ReproError):
            RunLog("tool", level="loud")
        log, _ = make_log()
        with pytest.raises(ReproError):
            log.event("loud", "e")

    def test_env_default_level(self, monkeypatch):
        monkeypatch.setenv("REPRO_LOG_LEVEL", "error")
        stream = io.StringIO()
        log = RunLog("tool", stream=stream)
        log.info("hidden")
        assert stream.getvalue() == ""

    def test_bad_tool_name_rejected(self):
        with pytest.raises(ReproError):
            RunLog("two words")


class TestErrorHelper:
    def test_error_returns_bad_args_by_default(self):
        log, stream = make_log()
        assert log.error("bad flag") == EXIT_BAD_ARGS
        assert "bad flag" in stream.getvalue()
        assert " error error " in stream.getvalue()

    def test_error_with_failed_checks_code(self):
        log, stream = make_log()
        assert log.error("2 checks failed",
                         code=EXIT_FAILED_CHECKS) == EXIT_FAILED_CHECKS

    def test_exit_code_constants(self):
        # The CLI contract: 0 ok, 1 failed checks, 2 bad args.
        assert (EXIT_OK, EXIT_FAILED_CHECKS, EXIT_BAD_ARGS) == (0, 1, 2)

    def test_error_always_emitted_even_at_error_level(self):
        log, stream = make_log(level="error")
        log.error("boom")
        assert "boom" in stream.getvalue()
