"""Profiler: deterministic output shape pinned with a fake clock."""

import json

import pytest

from repro.errors import ReproError
from repro.obs import Profiler
from repro.obs.profiler import write_experiment_profile


class FakeClock:
    """Advances a fixed step per call, so wall times are exact."""

    def __init__(self, step=1.0):
        self.now = 0.0
        self.step = step

    def __call__(self):
        value = self.now
        self.now += self.step
        return value


class TestPhases:
    def test_phase_accumulates_and_counts(self):
        prof = Profiler(clock=FakeClock(step=1.0))
        with prof.phase("build"):
            pass
        with prof.phase("build"):
            pass
        assert prof.phase_seconds("build") == pytest.approx(2.0)
        data = prof.to_dict()
        assert data["phases"] == [
            {"name": "build", "wall_s": 2.0, "calls": 2}]

    def test_phases_keep_first_seen_order(self):
        prof = Profiler(clock=FakeClock())
        for name in ("zeta", "alpha", "zeta", "mid"):
            with prof.phase(name):
                pass
        assert [p["name"] for p in prof.to_dict()["phases"]] == [
            "zeta", "alpha", "mid"]

    def test_unknown_phase_rejected(self):
        with pytest.raises(ReproError):
            Profiler().phase_seconds("nope")

    def test_phase_records_on_exception(self):
        prof = Profiler(clock=FakeClock())
        with pytest.raises(ValueError):
            with prof.phase("boom"):
                raise ValueError("x")
        assert prof.phase_seconds("boom") == pytest.approx(1.0)


class TestDeterministicOutput:
    def test_to_dict_is_byte_stable_with_fake_clock(self):
        def run():
            prof = Profiler(clock=FakeClock(step=0.5))
            with prof.phase("pooled-experiments"):
                with prof.phase("run:fig3"):
                    pass
            return json.dumps(prof.to_dict(extra={"ids": ["fig3"]}),
                              sort_keys=True)

        assert run() == run()

    def test_to_dict_shape(self):
        prof = Profiler(clock=FakeClock())
        with prof.phase("a"):
            pass
        data = prof.to_dict(extra={"jobs": 2})
        assert data["schema"] == 1
        assert data["total_s"] == pytest.approx(1.0)
        assert data["jobs"] == 2
        assert "cprofile_top" not in data      # only when collected

    def test_write_round_trips(self, tmp_path):
        prof = Profiler(clock=FakeClock())
        with prof.phase("a"):
            pass
        target = prof.write(tmp_path / "suite.profile.json")
        loaded = json.loads(target.read_text())
        assert loaded["phases"][0]["name"] == "a"


class TestDisabled:
    def test_disabled_records_nothing(self):
        prof = Profiler(enabled=False)
        with prof.phase("a"):
            pass
        with prof.collecting():
            pass
        assert prof.to_dict()["phases"] == []
        assert prof.to_dict()["total_s"] == 0.0


class TestCProfile:
    def test_collecting_builds_top_n_table(self):
        prof = Profiler(cprofile_top=5)
        with prof.collecting():
            sorted(range(1000))
        table = prof.to_dict()["cprofile_top"]
        assert 0 < len(table) <= 5
        for row in table:
            assert set(row) == {"function", "calls", "cumtime_s"}
            assert ":" in row["function"]
            assert "/" not in row["function"]   # basenames only

    def test_collecting_is_reentrant(self):
        prof = Profiler(cprofile_top=3)
        with prof.collecting():
            with prof.collecting():
                sorted(range(100))
        assert prof.to_dict()["cprofile_top"]

    def test_negative_top_rejected(self):
        with pytest.raises(ReproError):
            Profiler(cprofile_top=-1)


class TestExperimentProfile:
    def test_writes_id_named_file(self, tmp_path):
        target = write_experiment_profile(tmp_path, "fig3",
                                          wall_s=0.123456789,
                                          cached=False, passed=True)
        assert target.name == "fig3.profile.json"
        data = json.loads(target.read_text())
        assert data == {"schema": 1, "experiment": "fig3",
                        "wall_s": 0.123457, "cached": False,
                        "passed": True}

    def test_cached_unit_has_null_wall(self, tmp_path):
        target = write_experiment_profile(tmp_path, "fig5", wall_s=None,
                                          cached=True, passed=True)
        assert json.loads(target.read_text())["wall_s"] is None


class TestCliProfile:
    def test_profile_flag_writes_suite_and_per_experiment(
            self, tmp_path, monkeypatch, capsys):
        from repro.experiments.runner import main

        monkeypatch.setenv("REPRO_LEDGER_PATH",
                           str(tmp_path / "runs.jsonl"))
        assert main(["table1", "--no-cache",
                     "--profile", str(tmp_path / "prof")]) == 0
        capsys.readouterr()
        suite = json.loads(
            (tmp_path / "prof" / "suite.profile.json").read_text())
        assert suite["ids"] == ["table1"]
        names = [p["name"] for p in suite["phases"]]
        assert "pooled-experiments" in names
        assert "render+save" in names
        per = json.loads(
            (tmp_path / "prof" / "table1.profile.json").read_text())
        assert per["experiment"] == "table1"
        assert per["cached"] is False

    def test_bad_cprofile_value_is_exit_2(self, tmp_path, monkeypatch,
                                          capsys):
        from repro.experiments.runner import main

        monkeypatch.setenv("REPRO_LEDGER_PATH",
                           str(tmp_path / "runs.jsonl"))
        assert main(["table1", "--profile", str(tmp_path),
                     "--cprofile", "-3"]) == 2
        assert "error" in capsys.readouterr().err
