"""ProgressReporter / RunHooks: TTY vs log rendering, ledger collection."""

import io

import pytest

from repro.errors import ReproError
from repro.obs import ProgressReporter, RunHooks, RunLog


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def advance(self, seconds):
        self.now += seconds

    def __call__(self):
        return self.now


def tty_reporter(total, clock=None):
    stream = io.StringIO()
    reporter = ProgressReporter(total, stream=stream, tty=True,
                                clock=clock or FakeClock())
    return reporter, stream


def log_reporter(total, clock=None):
    stream = io.StringIO()
    runlog = RunLog("progress", level="debug", stream=stream)
    reporter = ProgressReporter(total, stream=stream, tty=False,
                                runlog=runlog,
                                clock=clock or FakeClock())
    return reporter, stream


class TestTty:
    def test_rewrites_one_line_with_carriage_returns(self):
        reporter, stream = tty_reporter(2)
        reporter.unit_finished("fig3", wall_s=1.2)
        reporter.unit_finished("fig5", wall_s=0.8)
        text = stream.getvalue()
        assert text.count("\r") == 2
        assert "\n" not in text
        assert "[2/2]" in text

    def test_cache_and_eta_fields_rendered(self):
        clock = FakeClock()
        reporter, stream = tty_reporter(4, clock=clock)
        reporter.cache_miss("fig3")
        clock.advance(2.0)
        reporter.unit_finished("fig3", wall_s=2.0)
        text = stream.getvalue()
        assert "cache 0h/1m" in text
        assert "eta 6.0s" in text              # 2s/unit x 3 remaining

    def test_cached_unit_rendered_as_cache(self):
        reporter, stream = tty_reporter(2)
        reporter.unit_finished("fig3", cached=True)
        assert "fig3 cache" in stream.getvalue()

    def test_close_erases_the_line(self):
        reporter, stream = tty_reporter(1)
        reporter.unit_finished("fig3", wall_s=0.1)
        reporter.close()
        reporter.close()                       # idempotent
        assert stream.getvalue().endswith("\r")

    def test_shorter_line_fully_overwrites_longer(self):
        clock = FakeClock()
        reporter, stream = tty_reporter(2, clock=clock)
        reporter.unit_started("a-very-long-experiment-name")
        start = len(stream.getvalue())
        clock.advance(1.0)                     # clear the repaint throttle
        reporter.unit_finished("x")
        second = stream.getvalue()[start:]
        assert len(second.lstrip("\r")) >= len(
            "a-very-long-experiment-name")


class TestThrottle:
    def test_rapid_repaints_suppressed(self):
        clock = FakeClock()
        reporter, stream = tty_reporter(100, clock=clock)
        for index in range(50):
            reporter.unit_finished(f"unit{index}", wall_s=0.001)
            clock.advance(0.001)               # 1 ms per unit
        # 50 ms of units at a 100 ms floor: only the first repaint lands.
        assert stream.getvalue().count("\r") == 1
        assert reporter.done == 50             # counters stay exact

    def test_repaint_resumes_after_interval(self):
        clock = FakeClock()
        reporter, stream = tty_reporter(10, clock=clock)
        reporter.unit_finished("a")
        clock.advance(0.2)
        reporter.unit_finished("b")
        text = stream.getvalue()
        assert text.count("\r") == 2
        assert "[2/10]" in text

    def test_final_unit_always_renders(self):
        clock = FakeClock()
        reporter, stream = tty_reporter(2, clock=clock)
        reporter.unit_finished("a")
        reporter.unit_finished("b")            # same instant, but last
        assert "[2/2]" in stream.getvalue()

    def test_retry_and_failure_bypass_throttle(self):
        clock = FakeClock()
        reporter, stream = tty_reporter(3, clock=clock)
        reporter.unit_finished("a")
        reporter.unit_retry("b", attempt=1, kind="timeout")
        reporter.unit_failed("b", kind="timeout", attempts=2)
        text = stream.getvalue()
        assert "retry #1" in text
        assert "FAILED" in text

    def test_log_mode_never_throttled(self):
        clock = FakeClock()
        reporter, stream = log_reporter(10, clock=clock)
        for index in range(5):
            reporter.unit_finished(f"unit{index}")
        assert len(stream.getvalue().splitlines()) == 5


class TestNonTty:
    def test_emits_runlog_events(self):
        reporter, stream = log_reporter(2)
        reporter.unit_started("fig3")
        reporter.unit_finished("fig3", wall_s=1.5)
        lines = stream.getvalue().splitlines()
        assert len(lines) == 2
        tool, level, event, fields = RunLog.parse_line(lines[0])
        assert (level, event) == ("debug", "unit-started")
        tool, level, event, fields = RunLog.parse_line(lines[1])
        assert (level, event) == ("info", "unit-finished")
        assert fields["id"] == "fig3"
        assert fields["done"] == "1" and fields["total"] == "2"

    def test_no_carriage_returns_in_log_mode(self):
        reporter, stream = log_reporter(1)
        reporter.unit_finished("fig3", wall_s=0.1)
        assert "\r" not in stream.getvalue()


class TestReporterBasics:
    def test_negative_total_rejected(self):
        with pytest.raises(ReproError):
            ProgressReporter(-1)

    def test_eta_none_until_first_finish_and_after_last(self):
        clock = FakeClock()
        reporter, _ = tty_reporter(1, clock=clock)
        assert reporter.eta_s() is None
        clock.advance(1.0)
        reporter.unit_finished("fig3")
        assert reporter.eta_s() is None


class TestRunHooks:
    def test_collects_ledger_inputs(self):
        clock = FakeClock()
        hooks = RunHooks(clock=clock)
        hooks.cache_hit("fig3")
        hooks.cache_miss("fig5")
        hooks.unit_started("fig5")
        clock.advance(2.5)
        hooks.unit_finished("fig5")
        assert hooks.cache_hits == ["fig3"]
        assert hooks.cache_misses == ["fig5"]
        assert hooks.unit_wall["fig5"] == pytest.approx(2.5)

    def test_explicit_wall_overrides_clock(self):
        hooks = RunHooks(clock=FakeClock())
        hooks.unit_finished("fig3", wall_s=7.0)
        assert hooks.unit_wall["fig3"] == 7.0

    def test_verdicts_shape(self):
        class Result:
            passed = True

        hooks = RunHooks()
        hooks.cache_hit("fig3")
        hooks.unit_finished("fig5", wall_s=1.23456)
        verdicts = hooks.verdicts([("fig3", Result()),
                                   ("fig5", Result())])
        assert verdicts == {
            "fig3": {"passed": True, "wall_s": None, "cached": True},
            "fig5": {"passed": True, "wall_s": 1.2346, "cached": False},
        }

    def test_forwards_to_reporter(self):
        reporter, stream = log_reporter(2)
        hooks = RunHooks(reporter=reporter, clock=FakeClock())
        hooks.cache_hit("fig3")
        hooks.unit_started("fig5")
        hooks.unit_finished("fig5")
        hooks.close()
        text = stream.getvalue()
        assert "unit-finished" in text
        assert "cached=true" in text
        assert reporter.done == 2


class TestStdoutContract:
    def test_progress_never_touches_stdout(self, tmp_path, monkeypatch,
                                           capsys):
        from repro.experiments.runner import main

        monkeypatch.setenv("REPRO_LEDGER_PATH",
                           str(tmp_path / "runs.jsonl"))
        assert main(["table1", "fig3", "--no-cache"]) == 0
        serial = capsys.readouterr().out
        assert main(["table1", "fig3", "--no-cache", "--jobs", "2"]) == 0
        parallel = capsys.readouterr().out
        assert serial == parallel

    def test_no_progress_flag_silences_unit_events(self, tmp_path,
                                                   monkeypatch, capsys):
        from repro.experiments.runner import main

        monkeypatch.setenv("REPRO_LEDGER_PATH",
                           str(tmp_path / "runs.jsonl"))
        assert main(["table1", "--no-cache", "--no-progress"]) == 0
        assert "unit-finished" not in capsys.readouterr().err
