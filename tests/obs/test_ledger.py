"""The run ledger: record schema, append/read, and CLI integration."""

import json

import pytest

from repro.errors import ReproError
from repro.obs import (
    append_record,
    config_hash,
    describe_append_failure,
    figure_wall_history,
    ledger_path,
    read_ledger,
    run_record,
)


def record(**overrides):
    base = dict(tool="repro-experiments", argv=["fig3"], ids=["fig3"],
                started_at="2026-08-06T00:00:00Z", wall_s=1.5,
                rev="abc1234")
    base.update(overrides)
    return run_record(**base)


class TestRecord:
    def test_schema_and_required_fields(self):
        rec = record(config={"fast": True},
                     cache_hits=["fig3"], cache_misses=[],
                     verdicts={"fig3": {"passed": True, "wall_s": 0.1,
                                        "cached": False}})
        assert rec["schema"] == 1
        assert rec["tool"] == "repro-experiments"
        assert rec["git_rev"] == "abc1234"
        assert rec["cache"] == {"hits": ["fig3"], "misses": []}
        assert rec["verdicts"]["fig3"]["passed"] is True
        assert rec["exit_code"] == 0
        json.dumps(rec)                      # JSON-clean

    def test_config_hash_is_canonical(self):
        assert config_hash({"b": 1, "a": 2}) == config_hash(
            {"a": 2, "b": 1})
        assert config_hash({"a": 1}) != config_hash({"a": 2})
        assert config_hash(None) is None
        assert len(config_hash({})) == 12

    def test_empty_tool_rejected(self):
        with pytest.raises(ReproError):
            record(tool="")

    def test_resilience_defaults_to_null(self):
        assert record()["resilience"] is None

    def test_resilience_field_passes_through(self):
        data = {"retries": {"fig3": 1}, "failures": {},
                "resumed": [], "quarantined": [], "interrupted": False}
        rec = record(resilience=data)
        assert rec["resilience"] == data
        json.dumps(rec)                      # JSON-clean

    def test_spans_defaults_to_null(self):
        assert record()["spans"] is None

    def test_spans_digest_passes_through(self):
        digest = {"exemplars": 12, "digest": "5b23dbc94c94"}
        rec = record(spans=digest)
        assert rec["spans"] == digest
        json.dumps(rec)                      # JSON-clean


class TestAppendRead:
    def test_append_then_read_round_trips(self, tmp_path):
        path = tmp_path / "runs.jsonl"
        append_record(record(), path)
        append_record(record(wall_s=2.0), path)
        records = read_ledger(path)
        assert len(records) == 2
        assert records[1]["wall_s"] == 2.0

    def test_records_are_single_lines(self, tmp_path):
        path = tmp_path / "runs.jsonl"
        append_record(record(), path)
        assert len(path.read_text().splitlines()) == 1

    def test_corrupt_line_skipped(self, tmp_path):
        path = tmp_path / "runs.jsonl"
        append_record(record(), path)
        with path.open("a") as handle:
            handle.write('{"truncated": \n')
        append_record(record(wall_s=3.0), path)
        records = read_ledger(path)
        assert [r["wall_s"] for r in records] == [1.5, 3.0]

    def test_missing_file_reads_empty(self, tmp_path):
        assert read_ledger(tmp_path / "nope.jsonl") == []

    def test_bad_schema_refused(self, tmp_path):
        with pytest.raises(ReproError):
            append_record({"schema": 99}, tmp_path / "runs.jsonl")

    def test_env_var_overrides_path(self, tmp_path, monkeypatch):
        target = tmp_path / "env.jsonl"
        monkeypatch.setenv("REPRO_LEDGER_PATH", str(target))
        assert ledger_path() == target
        append_record(record())
        assert len(read_ledger()) == 1


class TestWallHistory:
    def test_history_in_ledger_order(self):
        records = [
            record(verdicts={"fig3": {"passed": True, "wall_s": 0.5,
                                      "cached": False}}),
            record(verdicts={"fig5": {"passed": True, "wall_s": 9.0,
                                      "cached": False}}),
            record(verdicts={"fig3": {"passed": True, "wall_s": 0.3,
                                      "cached": False}}),
        ]
        assert figure_wall_history(records, "fig3") == [0.5, 0.3]

    def test_cached_and_null_walls_excluded(self):
        records = [
            record(verdicts={"fig3": {"passed": True, "wall_s": 0.5,
                                      "cached": True}}),
            record(verdicts={"fig3": {"passed": True, "wall_s": None,
                                      "cached": False}}),
        ]
        assert figure_wall_history(records, "fig3") == []


class TestCliIntegration:
    def test_experiments_run_appends_record(self, tmp_path, monkeypatch,
                                            capsys):
        from repro.experiments.runner import main

        path = tmp_path / "runs.jsonl"
        monkeypatch.setenv("REPRO_LEDGER_PATH", str(path))
        assert main(["table1", "--no-cache"]) == 0
        capsys.readouterr()
        records = read_ledger(path)
        assert len(records) == 1
        rec = records[0]
        assert rec["tool"] == "repro-experiments"
        assert rec["ids"] == ["table1"]
        assert rec["cache"]["misses"] == ["table1"]
        assert rec["verdicts"]["table1"]["passed"] is True
        assert rec["exit_code"] == 0
        assert rec["wall_s"] >= 0

    def test_cache_hit_recorded_on_second_run(self, tmp_path,
                                              monkeypatch, capsys):
        from repro.experiments.runner import main

        path = tmp_path / "runs.jsonl"
        monkeypatch.setenv("REPRO_LEDGER_PATH", str(path))
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
        assert main(["table1"]) == 0
        assert main(["table1"]) == 0
        capsys.readouterr()
        first, second = read_ledger(path)
        assert first["cache"]["misses"] == ["table1"]
        assert second["cache"]["hits"] == ["table1"]
        assert second["verdicts"]["table1"]["cached"] is True

    def test_no_ledger_flag_skips_append(self, tmp_path, monkeypatch,
                                         capsys):
        from repro.experiments.runner import main

        path = tmp_path / "runs.jsonl"
        monkeypatch.setenv("REPRO_LEDGER_PATH", str(path))
        assert main(["table1", "--no-cache", "--no-ledger"]) == 0
        capsys.readouterr()
        assert not path.exists()

    def test_memo_run_appends_record(self, tmp_path, monkeypatch,
                                     capsys):
        from repro.memo.cli import main

        path = tmp_path / "runs.jsonl"
        monkeypatch.setenv("REPRO_LEDGER_PATH", str(path))
        assert main(["latency", "--metrics"]) == 0
        capsys.readouterr()
        records = read_ledger(path)
        assert len(records) == 1
        assert records[0]["tool"] == "memo"
        assert records[0]["ids"] == ["memo-latency"]

    def test_ledger_stays_off_stdout(self, tmp_path, monkeypatch,
                                     capsys):
        from repro.experiments.runner import main

        monkeypatch.setenv("REPRO_LEDGER_PATH",
                           str(tmp_path / "runs.jsonl"))
        assert main(["table1", "--no-cache"]) == 0
        out = capsys.readouterr().out
        assert "runs.jsonl" not in out
        assert "run-start" not in out


class TestAppendFailureReporting:
    def test_describe_carries_errno_name_and_path(self):
        exc = OSError(28, "No space left on device",
                      "/results/runs.jsonl")
        fields = describe_append_failure(exc)
        assert fields["errno"] == "ENOSPC"
        assert fields["path"] == "/results/runs.jsonl"
        assert "No space left" in fields["error"]

    def test_describe_falls_back_to_ledger_path(self, monkeypatch):
        monkeypatch.setenv("REPRO_LEDGER_PATH", "/tmp/somewhere.jsonl")
        fields = describe_append_failure(OSError("no details"))
        assert fields["errno"] is None
        assert fields["path"] == "/tmp/somewhere.jsonl"

    def test_unwritable_ledger_warns_with_errno_and_path(
            self, tmp_path, monkeypatch, capsys):
        """The run must succeed; the warning must say which path and
        why (satellite: errno + path in ledger-append failures)."""
        from repro.experiments.runner import main

        blocker = tmp_path / "blocker"
        blocker.write_text("a file where a directory must go\n")
        target = blocker / "runs.jsonl"      # parent is a file
        monkeypatch.setenv("REPRO_LEDGER_PATH", str(target))
        assert main(["table1", "--no-cache", "--no-progress"]) == 0
        err = capsys.readouterr().err
        assert "ledger-append-failed" in err
        assert "errno=" in err and "EEXIST" in err
        assert str(blocker) in err

    def test_unwritable_ledger_memo_run_still_succeeds(
            self, tmp_path, monkeypatch, capsys):
        from repro.memo.cli import main

        blocker = tmp_path / "blocker"
        blocker.write_text("x\n")
        monkeypatch.setenv("REPRO_LEDGER_PATH",
                           str(blocker / "runs.jsonl"))
        assert main(["latency"]) == 0
        err = capsys.readouterr().err
        assert "ledger-append-failed" in err
        assert "errno=" in err
