"""Suite-wide fixtures.

The result cache defaults to ``results/.cache`` under the working
directory, the run ledger to ``results/runs.jsonl``, and the
checkpoint journal to ``results/.checkpoint``; tests must never read
from or write into the checkout's real copies (a stale entry could
mask a regression, and a test run should not dirty the repo).  Point
all three at throwaway locations for the whole session unless a test
overrides them explicitly.
"""

import os
import tempfile


def pytest_configure(config):
    os.environ.setdefault(
        "REPRO_CACHE_DIR",
        tempfile.mkdtemp(prefix="repro-test-cache-"))
    os.environ.setdefault(
        "REPRO_LEDGER_PATH",
        os.path.join(tempfile.mkdtemp(prefix="repro-test-ledger-"),
                     "runs.jsonl"))
    os.environ.setdefault(
        "REPRO_CHECKPOINT_DIR",
        tempfile.mkdtemp(prefix="repro-test-checkpoint-"))
