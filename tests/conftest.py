"""Suite-wide fixtures.

The result cache defaults to ``results/.cache`` under the working
directory; tests must never read from or write into the checkout's real
cache (a stale entry could mask a regression, and a test run should not
dirty the repo).  Point it at a throwaway directory for the whole
session unless a test overrides it explicitly.
"""

import os
import tempfile


def pytest_configure(config):
    os.environ.setdefault(
        "REPRO_CACHE_DIR",
        tempfile.mkdtemp(prefix="repro-test-cache-"))
