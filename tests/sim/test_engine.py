"""The event engine: ordering, cancellation, and run bounds."""

import pytest

from repro.errors import SimulationError
from repro.sim import Engine


class TestScheduling:
    def test_clock_starts_at_zero(self):
        assert Engine().now == 0.0

    def test_events_fire_in_time_order(self):
        eng = Engine()
        order = []
        eng.schedule(30.0, lambda: order.append("c"))
        eng.schedule(10.0, lambda: order.append("a"))
        eng.schedule(20.0, lambda: order.append("b"))
        eng.run()
        assert order == ["a", "b", "c"]

    def test_simultaneous_events_fire_in_schedule_order(self):
        eng = Engine()
        order = []
        for tag in "abcde":
            eng.schedule(5.0, lambda t=tag: order.append(t))
        eng.run()
        assert order == list("abcde")

    def test_clock_advances_to_event_time(self):
        eng = Engine()
        seen = []
        eng.schedule(42.0, lambda: seen.append(eng.now))
        eng.run()
        assert seen == [42.0]
        assert eng.now == 42.0

    def test_negative_delay_rejected(self):
        with pytest.raises(SimulationError):
            Engine().schedule(-1.0, lambda: None)

    def test_schedule_at_absolute_time(self):
        eng = Engine()
        eng.schedule(10.0, lambda: eng.schedule_at(25.0, lambda: None))
        eng.run()
        assert eng.now == 25.0

    def test_nested_scheduling_from_callback(self):
        eng = Engine()
        order = []

        def first():
            order.append(("first", eng.now))
            eng.schedule(5.0, lambda: order.append(("second", eng.now)))

        eng.schedule(10.0, first)
        eng.run()
        assert order == [("first", 10.0), ("second", 15.0)]


class TestCancellation:
    def test_cancelled_event_does_not_fire(self):
        eng = Engine()
        fired = []
        handle = eng.schedule(10.0, lambda: fired.append(1))
        eng.cancel(handle)
        eng.run()
        assert fired == []

    def test_cancel_is_idempotent(self):
        eng = Engine()
        handle = eng.schedule(10.0, lambda: None)
        eng.cancel(handle)
        eng.cancel(handle)
        eng.run()

    def test_peek_skips_cancelled(self):
        eng = Engine()
        early = eng.schedule(5.0, lambda: None)
        eng.schedule(10.0, lambda: None)
        eng.cancel(early)
        assert eng.peek() == 10.0


class TestRunBounds:
    def test_run_until_stops_clock(self):
        eng = Engine()
        fired = []
        eng.schedule(10.0, lambda: fired.append("early"))
        eng.schedule(100.0, lambda: fired.append("late"))
        eng.run(until=50.0)
        assert fired == ["early"]
        assert eng.now == 50.0

    def test_run_until_then_resume(self):
        eng = Engine()
        fired = []
        eng.schedule(100.0, lambda: fired.append("late"))
        eng.run(until=50.0)
        eng.run()
        assert fired == ["late"]
        assert eng.now == 100.0

    def test_run_until_beyond_last_event_advances_clock(self):
        eng = Engine()
        eng.schedule(10.0, lambda: None)
        eng.run(until=500.0)
        assert eng.now == 500.0

    def test_max_events_guard(self):
        eng = Engine()

        def rescheduler():
            eng.schedule(1.0, rescheduler)

        eng.schedule(1.0, rescheduler)
        with pytest.raises(SimulationError):
            eng.run(max_events=100)

    def test_events_processed_counter(self):
        eng = Engine()
        for _ in range(7):
            eng.schedule(1.0, lambda: None)
        eng.run()
        assert eng.events_processed == 7

    def test_step_returns_false_when_empty(self):
        assert Engine().step() is False


class TestBoundedStep:
    """The single-scan ``step(until=...)`` hot path (the historical
    ``peek()`` + ``step()`` pair scanned the heap top twice per
    event)."""

    def test_step_respects_until(self):
        eng = Engine()
        fired = []
        eng.schedule(10.0, lambda: fired.append("early"))
        eng.schedule(100.0, lambda: fired.append("late"))
        assert eng.step(until=50.0) is True
        assert eng.step(until=50.0) is False
        assert fired == ["early"]
        assert eng.now == 10.0          # clock not advanced past events
        assert eng.step() is True       # the late event is still queued
        assert fired == ["early", "late"]

    def test_step_until_skips_tombstones_before_deciding(self):
        eng = Engine()
        fired = []
        doomed = eng.schedule(5.0, lambda: fired.append("doomed"))
        eng.schedule(60.0, lambda: fired.append("late"))
        eng.cancel(doomed)
        # The earliest *live* event is past the bound, even though a
        # cancelled one sits in front of it.
        assert eng.step(until=50.0) is False
        assert fired == []

    def test_callback_args_ride_through_the_event(self):
        eng = Engine()
        seen = []
        eng.schedule(5.0, seen.append, "a")
        eng.schedule(10.0, lambda x, y: seen.append((x, y)), 1, 2)
        eng.run()
        assert seen == ["a", (1, 2)]

    def test_schedule_at_forwards_args(self):
        eng = Engine()
        seen = []
        eng.schedule_at(7.0, seen.append, "abs")
        eng.run()
        assert seen == ["abs"]


class TestHotPathSemanticsUnchanged:
    """Pinned behavior the heap-layout optimization must not move:
    ``events_processed`` counts only executed callbacks, and cancelled
    events neither fire nor count."""

    def test_events_processed_excludes_cancelled(self):
        eng = Engine()
        fired = []
        handles = [eng.schedule(float(i), fired.append, i)
                   for i in range(10)]
        for handle in handles[::2]:
            eng.cancel(handle)
        eng.run()
        assert fired == [1, 3, 5, 7, 9]
        assert eng.events_processed == 5

    def test_events_processed_counts_across_runs(self):
        eng = Engine()
        eng.schedule(10.0, lambda: None)
        eng.schedule(100.0, lambda: None)
        eng.run(until=50.0)
        assert eng.events_processed == 1
        eng.run()
        assert eng.events_processed == 2

    def test_cancel_from_within_callback(self):
        eng = Engine()
        fired = []
        later = eng.schedule(20.0, lambda: fired.append("later"))
        eng.schedule(10.0, lambda: eng.cancel(later))
        eng.run()
        assert fired == []
        assert eng.events_processed == 1

    def test_cancelled_then_rescheduled_same_time_order(self):
        eng = Engine()
        order = []
        eng.schedule(5.0, order.append, "first")
        doomed = eng.schedule(5.0, order.append, "doomed")
        eng.schedule(5.0, order.append, "third")
        eng.cancel(doomed)
        eng.run()
        assert order == ["first", "third"]

    def test_peek_unchanged_by_step_until(self):
        eng = Engine()
        eng.schedule(10.0, lambda: None)
        assert eng.peek() == 10.0
        assert eng.step(until=5.0) is False
        assert eng.peek() == 10.0
