"""The event engine: ordering, cancellation, and run bounds."""

import pytest

from repro.errors import SimulationError
from repro.sim import Engine


class TestScheduling:
    def test_clock_starts_at_zero(self):
        assert Engine().now == 0.0

    def test_events_fire_in_time_order(self):
        eng = Engine()
        order = []
        eng.schedule(30.0, lambda: order.append("c"))
        eng.schedule(10.0, lambda: order.append("a"))
        eng.schedule(20.0, lambda: order.append("b"))
        eng.run()
        assert order == ["a", "b", "c"]

    def test_simultaneous_events_fire_in_schedule_order(self):
        eng = Engine()
        order = []
        for tag in "abcde":
            eng.schedule(5.0, lambda t=tag: order.append(t))
        eng.run()
        assert order == list("abcde")

    def test_clock_advances_to_event_time(self):
        eng = Engine()
        seen = []
        eng.schedule(42.0, lambda: seen.append(eng.now))
        eng.run()
        assert seen == [42.0]
        assert eng.now == 42.0

    def test_negative_delay_rejected(self):
        with pytest.raises(SimulationError):
            Engine().schedule(-1.0, lambda: None)

    def test_schedule_at_absolute_time(self):
        eng = Engine()
        eng.schedule(10.0, lambda: eng.schedule_at(25.0, lambda: None))
        eng.run()
        assert eng.now == 25.0

    def test_nested_scheduling_from_callback(self):
        eng = Engine()
        order = []

        def first():
            order.append(("first", eng.now))
            eng.schedule(5.0, lambda: order.append(("second", eng.now)))

        eng.schedule(10.0, first)
        eng.run()
        assert order == [("first", 10.0), ("second", 15.0)]


class TestCancellation:
    def test_cancelled_event_does_not_fire(self):
        eng = Engine()
        fired = []
        handle = eng.schedule(10.0, lambda: fired.append(1))
        eng.cancel(handle)
        eng.run()
        assert fired == []

    def test_cancel_is_idempotent(self):
        eng = Engine()
        handle = eng.schedule(10.0, lambda: None)
        eng.cancel(handle)
        eng.cancel(handle)
        eng.run()

    def test_peek_skips_cancelled(self):
        eng = Engine()
        early = eng.schedule(5.0, lambda: None)
        eng.schedule(10.0, lambda: None)
        eng.cancel(early)
        assert eng.peek() == 10.0


class TestRunBounds:
    def test_run_until_stops_clock(self):
        eng = Engine()
        fired = []
        eng.schedule(10.0, lambda: fired.append("early"))
        eng.schedule(100.0, lambda: fired.append("late"))
        eng.run(until=50.0)
        assert fired == ["early"]
        assert eng.now == 50.0

    def test_run_until_then_resume(self):
        eng = Engine()
        fired = []
        eng.schedule(100.0, lambda: fired.append("late"))
        eng.run(until=50.0)
        eng.run()
        assert fired == ["late"]
        assert eng.now == 100.0

    def test_run_until_beyond_last_event_advances_clock(self):
        eng = Engine()
        eng.schedule(10.0, lambda: None)
        eng.run(until=500.0)
        assert eng.now == 500.0

    def test_max_events_guard(self):
        eng = Engine()

        def rescheduler():
            eng.schedule(1.0, rescheduler)

        eng.schedule(1.0, rescheduler)
        with pytest.raises(SimulationError):
            eng.run(max_events=100)

    def test_events_processed_counter(self):
        eng = Engine()
        for _ in range(7):
            eng.schedule(1.0, lambda: None)
        eng.run()
        assert eng.events_processed == 7

    def test_step_returns_false_when_empty(self):
        assert Engine().step() is False
