"""Percentile estimation and rate metering."""

import math

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.sim import LatencyRecorder, RateMeter, percentile


class TestPercentile:
    def test_single_sample(self):
        assert percentile([5.0], 99.0) == 5.0

    def test_median_of_odd_list(self):
        assert percentile([1.0, 2.0, 3.0], 50.0) == 2.0

    def test_interpolation(self):
        assert percentile([0.0, 10.0], 50.0) == 5.0

    def test_p0_and_p100_are_extremes(self):
        data = [3.0, 1.0, 7.0, 5.0]
        assert percentile(data, 0.0) == 1.0
        assert percentile(data, 100.0) == 7.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            percentile([], 50.0)

    def test_out_of_range_pct_rejected(self):
        with pytest.raises(ValueError):
            percentile([1.0], 101.0)

    @given(st.lists(st.floats(min_value=0, max_value=1e6), min_size=2,
                    max_size=200),
           st.floats(min_value=0, max_value=100))
    def test_matches_numpy_linear(self, data, pct):
        ours = percentile(data, pct)
        theirs = float(np.percentile(np.array(data), pct, method="linear"))
        assert ours == pytest.approx(theirs, rel=1e-9, abs=1e-9)

    @given(st.lists(st.floats(min_value=0, max_value=1e6), min_size=1,
                    max_size=100))
    def test_monotone_in_pct(self, data):
        # Allow one ulp of slack: interpolating between two equal values can
        # round a hair below the exact value.
        p50, p99 = percentile(data, 50.0), percentile(data, 99.0)
        assert p50 <= p99 or math.isclose(p50, p99, rel_tol=1e-12)


class TestLatencyRecorder:
    def test_summary(self):
        rec = LatencyRecorder()
        for v in [10.0, 20.0, 30.0, 40.0]:
            rec.record(v)
        summary = rec.summary()
        assert summary["count"] == 4
        assert summary["mean_ns"] == 25.0
        assert summary["max_ns"] == 40.0
        assert summary["p50_ns"] == 25.0

    def test_negative_latency_rejected(self):
        with pytest.raises(ValueError):
            LatencyRecorder().record(-1.0)

    def test_empty_recorder_raises_on_stats(self):
        with pytest.raises(ValueError):
            LatencyRecorder().mean()

    def test_p99_dominated_by_tail(self):
        rec = LatencyRecorder()
        for _ in range(99):
            rec.record(1.0)
        rec.record(1000.0)
        assert rec.p99() > rec.p50()


class TestRateMeter:
    def test_bandwidth_over_window(self):
        meter = RateMeter()
        meter.add(nbytes=64_000_000_000, ops=1)  # 64 GB in 1 second
        assert meter.bandwidth(now_ns=1e9) == pytest.approx(64e9)

    def test_throughput(self):
        meter = RateMeter()
        meter.add(nbytes=0, ops=500)
        assert meter.throughput(now_ns=1e9) == pytest.approx(500.0)

    def test_reset_starts_new_window(self):
        meter = RateMeter()
        meter.add(nbytes=100, ops=1)
        meter.reset(now_ns=1e9)
        meter.add(nbytes=64, ops=1)
        assert meter.bandwidth(now_ns=2e9) == pytest.approx(64.0)

    def test_zero_window_rejected(self):
        meter = RateMeter()
        meter.add(nbytes=1, ops=1)
        with pytest.raises(ValueError):
            meter.bandwidth(now_ns=0.0)

    def test_negative_add_rejected(self):
        with pytest.raises(ValueError):
            RateMeter().add(nbytes=-1)


class TestWindowing:
    def test_width_partitions_span_evenly(self):
        from repro.sim import window_width
        assert window_width(1e9, 4) == pytest.approx(0.25e9)

    def test_degenerate_span_gets_unit_width(self):
        from repro.sim import window_width
        assert window_width(0.0, 4) == 1.0

    def test_slot_assignment_and_right_closure(self):
        from repro.sim import window_slot
        assert window_slot(0.0, 250.0, 4) == 0
        assert window_slot(749.9, 250.0, 4) == 2
        # The last window is closed on the right: a timestamp at the
        # span end (or past it via float rounding) stays in range.
        assert window_slot(1000.0, 250.0, 4) == 3
        assert window_slot(1000.1, 250.0, 4) == 3

    def test_non_positive_count_rejected(self):
        from repro.sim import window_slot, window_width
        with pytest.raises(ValueError):
            window_width(1e9, 0)
        with pytest.raises(ValueError):
            window_slot(0.0, 1.0, 0)


class TestSubstream:
    def test_same_name_same_stream(self):
        from repro.sim import substream
        a = substream("arrivals").random(5)
        b = substream("arrivals").random(5)
        assert np.array_equal(a, b)

    def test_distinct_names_distinct_streams(self):
        from repro.sim import substream
        a = substream("arrivals").random(5)
        b = substream("keys").random(5)
        assert not np.array_equal(a, b)

    def test_seed_changes_stream(self):
        from repro.sim import substream
        a = substream("arrivals", seed=1).random(5)
        b = substream("arrivals", seed=2).random(5)
        assert not np.array_equal(a, b)

    def test_empty_name_rejected(self):
        from repro.sim import substream
        with pytest.raises(ValueError):
            substream("")
