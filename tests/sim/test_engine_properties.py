"""Property tests: the event engine's ordering guarantees."""

from hypothesis import given, settings, strategies as st

from repro.sim import Engine


class TestOrderingProperties:
    @settings(max_examples=50, deadline=None)
    @given(st.lists(st.floats(min_value=0.0, max_value=1e6),
                    min_size=1, max_size=60))
    def test_events_fire_in_nondecreasing_time_order(self, delays):
        engine = Engine()
        fired = []
        for delay in delays:
            engine.schedule(delay, lambda: fired.append(engine.now))
        engine.run()
        assert fired == sorted(fired)
        assert len(fired) == len(delays)

    @settings(max_examples=50, deadline=None)
    @given(st.lists(st.floats(min_value=0.0, max_value=100.0),
                    min_size=1, max_size=40))
    def test_equal_times_preserve_schedule_order(self, delays):
        engine = Engine()
        order = []
        rounded = [round(d, 0) for d in delays]   # force collisions
        for tag, delay in enumerate(rounded):
            engine.schedule(delay, lambda t=tag: order.append(t))
        engine.run()
        # Stable: among equal fire times, earlier scheduling fires first.
        by_time = {}
        for tag in order:
            by_time.setdefault(rounded[tag], []).append(tag)
        for tags in by_time.values():
            assert tags == sorted(tags)

    @settings(max_examples=30, deadline=None)
    @given(st.lists(st.tuples(st.floats(min_value=0.0, max_value=1e4),
                              st.booleans()),
                    min_size=1, max_size=40))
    def test_cancelled_events_never_fire(self, entries):
        engine = Engine()
        fired = []
        expected = 0
        for tag, (delay, keep) in enumerate(entries):
            handle = engine.schedule(delay, lambda t=tag: fired.append(t))
            if keep:
                expected += 1
            else:
                engine.cancel(handle)
        engine.run()
        assert len(fired) == expected

    @settings(max_examples=30, deadline=None)
    @given(st.lists(st.floats(min_value=0.1, max_value=1e4),
                    min_size=1, max_size=30),
           st.floats(min_value=0.0, max_value=1e4))
    def test_run_until_is_a_clean_partition(self, delays, cutoff):
        """Events at or before the cutoff fire; the rest fire on resume —
        nothing is lost or duplicated."""
        engine = Engine()
        fired = []
        for delay in delays:
            engine.schedule(delay, lambda: fired.append(engine.now))
        engine.run(until=cutoff)
        early = list(fired)
        assert all(t <= cutoff for t in early)
        engine.run()
        assert len(fired) == len(delays)
        assert fired == sorted(fired)
