"""Generator processes: timeouts, resources, joins, and events."""

import pytest

from repro.errors import SimulationError
from repro.sim import (
    Acquire,
    Engine,
    Get,
    Process,
    Put,
    Release,
    Server,
    Signal,
    SimEvent,
    Store,
    Timeout,
    WaitEvent,
)
from repro.sim.process import spawn


class TestTimeout:
    def test_timeout_advances_time(self):
        eng = Engine()
        times = []

        def body():
            yield Timeout(10.0)
            times.append(eng.now)
            yield Timeout(5.0)
            times.append(eng.now)

        spawn(eng, body())
        eng.run()
        assert times == [10.0, 15.0]

    def test_negative_timeout_rejected(self):
        with pytest.raises(SimulationError):
            Timeout(-1.0)

    def test_process_result(self):
        eng = Engine()

        def body():
            yield Timeout(1.0)
            return 42

        proc = spawn(eng, body())
        eng.run()
        assert proc.done
        assert proc.result == 42


class TestServerInteraction:
    def test_capacity_one_serializes(self):
        eng = Engine()
        server = Server(1)
        log = []

        def worker(tag):
            yield Acquire(server)
            log.append((tag, "start", eng.now))
            yield Timeout(10.0)
            log.append((tag, "end", eng.now))
            yield Release(server)

        spawn(eng, worker("a"))
        spawn(eng, worker("b"))
        eng.run()
        assert log == [("a", "start", 0.0), ("a", "end", 10.0),
                       ("b", "start", 10.0), ("b", "end", 20.0)]

    def test_capacity_two_overlaps(self):
        eng = Engine()
        server = Server(2)
        ends = []

        def worker():
            yield Acquire(server)
            yield Timeout(10.0)
            yield Release(server)
            ends.append(eng.now)

        for _ in range(2):
            spawn(eng, worker())
        eng.run()
        assert ends == [10.0, 10.0]

    def test_fifo_ordering_of_waiters(self):
        eng = Engine()
        server = Server(1)
        order = []

        def worker(tag):
            yield Acquire(server)
            order.append(tag)
            yield Timeout(1.0)
            yield Release(server)

        for tag in range(5):
            spawn(eng, worker(tag))
        eng.run()
        assert order == [0, 1, 2, 3, 4]


class TestStoreInteraction:
    def test_producer_consumer(self):
        eng = Engine()
        store = Store()
        received = []

        def producer():
            for i in range(3):
                yield Timeout(10.0)
                yield Put(store, i)

        def consumer():
            for _ in range(3):
                item = yield Get(store)
                received.append((item, eng.now))

        spawn(eng, producer())
        spawn(eng, consumer())
        eng.run()
        assert [item for item, _ in received] == [0, 1, 2]
        assert [t for _, t in received] == [10.0, 20.0, 30.0]


class TestJoin:
    def test_parent_waits_for_child(self):
        eng = Engine()
        seq = []

        def child():
            yield Timeout(50.0)
            return "child-result"

        def parent():
            proc = spawn(eng, child())
            result = yield proc
            seq.append((result, eng.now))

        spawn(eng, parent())
        eng.run()
        assert seq == [("child-result", 50.0)]

    def test_join_on_already_done_child(self):
        eng = Engine()
        seq = []

        def child():
            yield Timeout(1.0)
            return 7

        def parent(proc):
            yield Timeout(100.0)
            result = yield proc
            seq.append(result)

        child_proc = spawn(eng, child())
        spawn(eng, parent(child_proc))
        eng.run()
        assert seq == [7]


class TestEvents:
    def test_signal_wakes_all_waiters(self):
        eng = Engine()
        event = SimEvent()
        woken = []

        def waiter(tag):
            value = yield WaitEvent(event)
            woken.append((tag, value))

        def signaller():
            yield Timeout(5.0)
            yield Signal(event, "go")

        spawn(eng, waiter("a"))
        spawn(eng, waiter("b"))
        spawn(eng, signaller())
        eng.run()
        assert sorted(woken) == [("a", "go"), ("b", "go")]

    def test_double_signal_is_error(self):
        event = SimEvent()
        event.signal()
        with pytest.raises(SimulationError):
            event.signal()

    def test_unknown_command_rejected(self):
        eng = Engine()

        def body():
            yield "not-a-command"

        spawn(eng, body())
        with pytest.raises(SimulationError):
            eng.run()


class TestResourceDirectAPI:
    def test_release_idle_server_is_error(self):
        with pytest.raises(SimulationError):
            Server(1).release()

    def test_zero_capacity_rejected(self):
        with pytest.raises(SimulationError):
            Server(0)

    def test_queue_depth_tracking(self):
        server = Server(1)
        server.acquire(lambda: None)
        server.acquire(lambda: None)
        server.acquire(lambda: None)
        assert server.busy == 1
        assert server.queue_depth == 2
        assert server.max_queue_depth == 2
