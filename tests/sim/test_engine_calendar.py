"""Calendar-queue scheduler pins: the semantics the batched hot path
must not move, plus heap ≡ calendar event-order equivalence.

The generic engine contract lives in ``test_engine.py`` (and runs under
whichever scheduler ``REPRO_SIM_SCHEDULER`` selects).  This file pins
the calendar-specific machinery — run/future promotion, in-run
insertion behind the walk cursor, tombstones inside a batched drain,
``step_until`` bounds, compaction — and cross-checks both
implementations against each other on an adversarial workload.
"""

import numpy as np
import pytest

import repro.sim.engine as engine_mod
from repro.errors import SimulationError
from repro.sim import Engine
from repro.sim.engine import scheduler_mode, scheduling_fingerprint

MODES = ["calendar", "heap"]


class TestModeSelection:
    def test_default_mode_is_calendar(self, monkeypatch):
        monkeypatch.delenv("REPRO_SIM_SCHEDULER", raising=False)
        assert scheduler_mode() == "calendar"
        assert Engine().scheduler == "calendar"

    def test_env_selects_heap(self, monkeypatch):
        monkeypatch.setenv("REPRO_SIM_SCHEDULER", "heap")
        assert scheduler_mode() == "heap"
        assert Engine().scheduler == "heap"

    def test_unknown_env_mode_rejected(self, monkeypatch):
        monkeypatch.setenv("REPRO_SIM_SCHEDULER", "splay-tree")
        with pytest.raises(SimulationError):
            scheduler_mode()

    def test_unknown_constructor_mode_rejected(self):
        with pytest.raises(SimulationError):
            Engine(scheduler="bogus")

    def test_fingerprint_names_the_mode(self, monkeypatch):
        monkeypatch.delenv("REPRO_SIM_SCHEDULER", raising=False)
        assert scheduling_fingerprint() == "sim-scheduler:calendar"
        monkeypatch.setenv("REPRO_SIM_SCHEDULER", "heap")
        assert scheduling_fingerprint() == "sim-scheduler:heap"


@pytest.mark.parametrize("mode", MODES)
class TestSameInstantFifo:
    def test_same_instant_fires_in_schedule_order(self, mode):
        eng = Engine(scheduler=mode)
        order = []
        for tag in range(20):
            eng.schedule(5.0, order.append, tag)
        eng.run()
        assert order == list(range(20))

    def test_fifo_survives_run_promotion(self, mode):
        # Same-instant events split across the run/future boundary:
        # the first batch lands in the initial future list, the second
        # is scheduled from a callback after promotion.
        eng = Engine(scheduler=mode)
        order = []
        eng.schedule(1.0, lambda: [eng.schedule(4.0, order.append, t)
                                   for t in ("c", "d")])
        eng.schedule(5.0, order.append, "a")
        eng.schedule(5.0, order.append, "b")
        eng.run()
        assert order == ["a", "b", "c", "d"]


@pytest.mark.parametrize("mode", MODES)
class TestTombstones:
    def test_cancel_in_future_list(self, mode):
        eng = Engine(scheduler=mode)
        fired = []
        doomed = eng.schedule(10.0, fired.append, "doomed")
        eng.schedule(20.0, fired.append, "kept")
        eng.cancel(doomed)
        eng.run()
        assert fired == ["kept"]
        assert eng.events_processed == 1

    def test_cancel_after_in_run_insertion(self, mode):
        # Cancel an event that was insort-ed into the *current* run
        # from a callback — the tombstone must be honored mid-drain.
        eng = Engine(scheduler=mode)
        fired = []

        def first():
            doomed = eng.schedule(1.0, fired.append, "doomed")
            eng.cancel(doomed)
            eng.schedule(2.0, fired.append, "kept")

        eng.schedule(5.0, first)
        eng.schedule(10.0, fired.append, "tail")
        eng.run()
        assert fired == ["kept", "tail"]

    def test_cancel_every_pending_event(self, mode):
        eng = Engine(scheduler=mode)
        handles = [eng.schedule(float(i + 1), lambda: None)
                   for i in range(10)]
        for handle in handles:
            eng.cancel(handle)
        eng.run()
        assert eng.events_processed == 0
        assert eng.peek() is None


@pytest.mark.parametrize("mode", MODES)
class TestStepUntil:
    def test_executes_only_events_at_or_before_bound(self, mode):
        eng = Engine(scheduler=mode)
        fired = []
        for t in (10.0, 20.0, 30.0, 40.0):
            eng.schedule(t, fired.append, t)
        assert eng.step_until(25.0) == 2
        assert fired == [10.0, 20.0]

    def test_clock_stays_at_last_event_not_bound(self, mode):
        # Unlike run(until=...), step_until leaves the clock where the
        # last executed event put it.
        eng = Engine(scheduler=mode)
        eng.schedule(10.0, lambda: None)
        eng.step_until(50.0)
        assert eng.now == 10.0

    def test_boundary_event_included(self, mode):
        eng = Engine(scheduler=mode)
        fired = []
        eng.schedule(25.0, fired.append, "edge")
        assert eng.step_until(25.0) == 1
        assert fired == ["edge"]

    def test_empty_queue_returns_zero(self, mode):
        assert Engine(scheduler=mode).step_until(100.0) == 0

    def test_remaining_events_fire_on_resume(self, mode):
        eng = Engine(scheduler=mode)
        fired = []
        eng.schedule(10.0, fired.append, "early")
        eng.schedule(100.0, fired.append, "late")
        eng.step_until(50.0)
        eng.run()
        assert fired == ["early", "late"]
        assert eng.now == 100.0

    def test_not_reentrant(self, mode):
        eng = Engine(scheduler=mode)
        errors = []

        def nested():
            try:
                eng.step_until(100.0)
            except SimulationError as exc:
                errors.append(exc)

        eng.schedule(1.0, nested)
        eng.run()
        assert len(errors) == 1


@pytest.mark.parametrize("mode", MODES)
class TestRunGuards:
    def test_max_events_raises_even_with_empty_queue(self, mode):
        # The legacy loop checked the budget before polling the queue;
        # the batched drain must keep that order.
        eng = Engine(scheduler=mode)
        with pytest.raises(SimulationError):
            eng.run(max_events=0)

    def test_max_events_counts_only_executed(self, mode):
        # Tombstones don't consume the budget; the budget check runs
        # *before* polling the queue, so executing exactly max_events
        # raises (the legacy loop's boundary, kept by the drain).
        eng = Engine(scheduler=mode)
        handles = [eng.schedule(float(i + 1), lambda: None)
                   for i in range(10)]
        for handle in handles[:8]:
            eng.cancel(handle)
        eng.run(max_events=3)              # 2 live events < budget
        assert eng.events_processed == 2
        eng2 = Engine(scheduler=mode)
        eng2.schedule(1.0, lambda: None)
        eng2.schedule(2.0, lambda: None)
        with pytest.raises(SimulationError):
            eng2.run(max_events=2)

    def test_run_not_reentrant(self, mode):
        eng = Engine(scheduler=mode)
        errors = []

        def nested():
            try:
                eng.run()
            except SimulationError as exc:
                errors.append(exc)

        eng.schedule(1.0, nested)
        eng.run()
        assert len(errors) == 1


class TestCalendarInternals:
    def test_in_run_insertion_during_drain(self):
        # A callback schedules an event that lands between remaining
        # entries of the *current* run: it must be insort-ed after the
        # cursor and fire in time order within the same drain.
        eng = Engine(scheduler="calendar")
        order = []
        eng.schedule(10.0, lambda: (order.append("first"),
                                    eng.schedule(5.0, order.append,
                                                 "inserted")))
        eng.schedule(20.0, order.append, "last")
        eng.run()
        assert order == ["first", "inserted", "last"]

    def test_compaction_preserves_order(self, monkeypatch):
        monkeypatch.setattr(engine_mod, "_COMPACT_THRESHOLD", 8)
        eng = Engine(scheduler="calendar")
        fired = []
        handles = [eng.schedule(float(i), fired.append, i)
                   for i in range(100)]
        for handle in handles[::3]:
            eng.cancel(handle)
        eng.run()
        expected = [i for i in range(100) if i % 3 != 0]
        assert fired == expected
        assert eng.events_processed == len(expected)

    def test_compaction_with_mid_drain_insertions(self, monkeypatch):
        monkeypatch.setattr(engine_mod, "_COMPACT_THRESHOLD", 4)
        eng = Engine(scheduler="calendar")
        fired = []

        def chain(n):
            fired.append(n)
            if n < 30:
                eng.schedule(1.0, chain, n + 1)

        eng.schedule(1.0, chain, 0)
        eng.run()
        assert fired == list(range(31))


def _random_workload(eng: Engine, seed: int) -> list:
    """Drive one engine with a seed-determined adversarial workload:
    mixed pre-scheduled and callback-scheduled events, same-instant
    clusters, cancellations, and step_until/run interleaving."""
    rng = np.random.default_rng(seed)
    trace = []
    pending = []

    def fire(tag):
        trace.append((round(eng.now, 6), tag))
        draw = rng.random()
        if draw < 0.35:
            pending.append(eng.schedule(float(rng.integers(0, 50)),
                                        fire, f"{tag}.c"))
        if draw < 0.10 and pending:
            eng.cancel(pending[int(rng.integers(0, len(pending)))])

    for i in range(200):
        time = float(rng.integers(0, 100))
        pending.append(eng.schedule(time, fire, f"p{i}"))
    for victim in rng.integers(0, 200, size=30):
        eng.cancel(pending[int(victim)])
    trace.append(("stepped", eng.step_until(40.0)))
    eng.run(until=120.0)
    eng.run()
    trace.append(("final", round(eng.now, 6), eng.events_processed))
    return trace


class TestHeapCalendarEquivalence:
    @pytest.mark.parametrize("seed", [0, 1, 2, 3, 4])
    def test_identical_event_traces(self, seed):
        calendar = _random_workload(Engine(scheduler="calendar"), seed)
        heap = _random_workload(Engine(scheduler="heap"), seed)
        assert calendar == heap
