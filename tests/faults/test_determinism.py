"""Fault injection is deterministic: serial ≡ parallel, run ≡ re-run.

Mirrors tests/parallel/test_determinism.py, with an active FaultPlan in
every run — the draws are counter-based (docs/FAULTS.md), so sharding a
faulty sweep across processes must not move a single fault.
"""

import pytest

from repro.cxl.e2e_sim import CxlEndToEndSim, CxlWriteEndToEndSim
from repro.experiments import get
from repro.experiments.runner import main
from repro.faults import FaultPlan
from repro.telemetry import Telemetry

PLAN = FaultPlan(crc_rate=0.02, poison_rate=0.005, timeout_rate=0.002,
                 stall_rate=0.02, seed=11)
THREADS = [1, 2, 4]
LINES = 200


class TestFaultySweepDeterminism:
    def test_read_sweep_parallel_equals_serial(self):
        serial = CxlEndToEndSim(fault_plan=PLAN).sweep(
            THREADS, lines_per_thread=LINES)
        parallel = CxlEndToEndSim(fault_plan=PLAN).sweep(
            THREADS, lines_per_thread=LINES, jobs=2)
        assert parallel == serial
        assert any(r.faults_injected > 0 for r in serial.values())

    def test_write_sweep_parallel_equals_serial(self):
        serial = CxlWriteEndToEndSim(fault_plan=PLAN).sweep(
            THREADS, lines_per_thread=LINES)
        parallel = CxlWriteEndToEndSim(fault_plan=PLAN).sweep(
            THREADS, lines_per_thread=LINES, jobs=2)
        assert parallel == serial
        assert any(r.faults_injected > 0 for r in serial.values())

    def test_faulty_telemetry_merges_to_serial_session(self):
        serial = Telemetry.on()
        CxlEndToEndSim(fault_plan=PLAN, telemetry=serial).sweep(
            THREADS, lines_per_thread=LINES)
        merged = Telemetry.on()
        CxlEndToEndSim(fault_plan=PLAN, telemetry=merged).sweep(
            THREADS, lines_per_thread=LINES, jobs=2)
        assert [e.key() for e in merged.tracer.events] \
            == [e.key() for e in serial.tracer.events]
        assert merged.registry.snapshot() == serial.registry.snapshot()
        assert merged.registry.counter("faults.recoveries").value > 0

    def test_same_seed_same_results_across_fresh_sims(self):
        first = CxlEndToEndSim(fault_plan=PLAN).run(
            threads=4, lines_per_thread=LINES)
        second = CxlEndToEndSim(fault_plan=PLAN).run(
            threads=4, lines_per_thread=LINES)
        assert first == second

    def test_different_seed_different_faults(self):
        reseeded = FaultPlan(**{**PLAN.to_dict(), "seed": 99})
        first = CxlEndToEndSim(fault_plan=PLAN).run(
            threads=4, lines_per_thread=LINES)
        second = CxlEndToEndSim(fault_plan=reseeded).run(
            threads=4, lines_per_thread=LINES)
        assert first != second


class TestDegradedExperimentDeterminism:
    def test_experiment_jobs_equals_serial(self):
        serial = get("degraded-cxl").run(fast=True)
        sharded = get("degraded-cxl").run(fast=True, jobs=2)
        assert sharded.render() == serial.render()
        assert sharded.series == serial.series

    def test_alias_resolves(self):
        assert get("figF").experiment_id == "degraded-cxl"

    def test_accepts_faults_flag(self):
        assert get("degraded-cxl").accepts_faults
        assert not get("fig3").accepts_faults

    def test_custom_plan_changes_result(self):
        default = get("degraded-cxl").run(fast=True)
        custom = get("degraded-cxl").run(
            fast=True, fault_plan=FaultPlan(crc_rate=0.05, seed=3))
        assert custom.rendered != default.rendered

    def test_plan_rejected_by_non_fault_experiment(self):
        from repro.errors import ExperimentError

        with pytest.raises(ExperimentError):
            get("table1").run(fast=True, fault_plan=PLAN)


@pytest.fixture
def isolated_cache(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
    return tmp_path


class TestFaultyCliDeterminism:
    def _save_run(self, tmp_path, name, extra):
        out = tmp_path / name
        assert main(["degraded-cxl", "--save", str(out), *extra]) == 0
        return {path.name: path.read_bytes()
                for path in sorted(out.iterdir())}

    def test_jobs_save_matches_serial_save(self, isolated_cache, capsys):
        serial = self._save_run(isolated_cache, "serial", ["--no-cache"])
        parallel = self._save_run(isolated_cache, "parallel",
                                  ["--no-cache", "--jobs", "2"])
        assert parallel == serial
        capsys.readouterr()

    def test_faults_flag_jobs_matches_serial(self, isolated_cache,
                                             capsys):
        spec = "crc=0.03,poison=0.004,seed=5"
        serial = self._save_run(isolated_cache, "serial",
                                ["--no-cache", "--faults", spec])
        parallel = self._save_run(
            isolated_cache, "parallel",
            ["--no-cache", "--faults", spec, "--jobs", "2"])
        assert parallel == serial
        capsys.readouterr()
