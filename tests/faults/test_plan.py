"""FaultPlan: validation, scaling, parsing, serialization."""

import pickle

import pytest

from repro.errors import FaultError
from repro.faults import FaultPlan, ZERO_FAULTS


class TestValidation:
    def test_defaults_are_inactive(self):
        assert not FaultPlan().active
        assert ZERO_FAULTS == FaultPlan()

    @pytest.mark.parametrize("field", ["crc_rate", "poison_rate",
                                       "timeout_rate", "stall_rate"])
    def test_rates_must_be_probabilities(self, field):
        with pytest.raises(FaultError):
            FaultPlan(**{field: 1.0})
        with pytest.raises(FaultError):
            FaultPlan(**{field: -0.1})

    @pytest.mark.parametrize("field", ["stall_ns", "timeout_ns",
                                       "retry_backoff_ns"])
    def test_durations_must_be_non_negative(self, field):
        with pytest.raises(FaultError):
            FaultPlan(**{field: -1.0})

    @pytest.mark.parametrize("field", ["link_width_fraction",
                                       "link_speed_fraction"])
    def test_link_fractions_in_unit_interval(self, field):
        with pytest.raises(FaultError):
            FaultPlan(**{field: 0.0})
        with pytest.raises(FaultError):
            FaultPlan(**{field: 1.5})

    def test_max_retries_at_least_one(self):
        with pytest.raises(FaultError):
            FaultPlan(max_retries=0)


class TestDerived:
    def test_any_rate_activates(self):
        assert FaultPlan(crc_rate=0.01).active
        assert FaultPlan(stall_rate=0.5).active

    def test_degraded_link_activates(self):
        plan = FaultPlan(link_width_fraction=0.5)
        assert plan.active
        assert plan.link_slowdown == pytest.approx(2.0)

    def test_link_slowdown_compounds_width_and_speed(self):
        plan = FaultPlan(link_width_fraction=0.5,
                         link_speed_fraction=0.5)
        assert plan.link_slowdown == pytest.approx(4.0)

    def test_scaled_multiplies_rates_only(self):
        base = FaultPlan(crc_rate=0.01, poison_rate=0.002,
                         stall_ns=123.0, seed=9)
        doubled = base.scaled(2.0)
        assert doubled.crc_rate == pytest.approx(0.02)
        assert doubled.poison_rate == pytest.approx(0.004)
        assert doubled.stall_ns == 123.0
        assert doubled.seed == 9

    def test_scaled_zero_is_inactive(self):
        assert not FaultPlan(crc_rate=0.5).scaled(0.0).active

    def test_scaled_caps_below_one(self):
        assert FaultPlan(crc_rate=0.5).scaled(100.0).crc_rate < 1.0

    def test_scaled_rejects_negative(self):
        with pytest.raises(FaultError):
            FaultPlan().scaled(-1.0)


class TestSerialization:
    def test_dict_round_trip(self):
        plan = FaultPlan(crc_rate=0.01, timeout_ns=999.0, seed=4)
        assert FaultPlan.from_dict(plan.to_dict()) == plan

    def test_from_dict_rejects_unknown_fields(self):
        with pytest.raises(FaultError):
            FaultPlan.from_dict({"crc_rate": 0.1, "bogus": 1})

    def test_pickle_round_trip(self):
        plan = FaultPlan(poison_rate=0.01, link_width_fraction=0.5)
        assert pickle.loads(pickle.dumps(plan)) == plan

    def test_parse(self):
        plan = FaultPlan.parse(
            "crc=0.01, poison=0.002, stall-ns=300, retries=4, "
            "width=0.5, seed=7")
        assert plan == FaultPlan(crc_rate=0.01, poison_rate=0.002,
                                 stall_ns=300.0, max_retries=4,
                                 link_width_fraction=0.5, seed=7)

    def test_parse_empty_spec_is_zero_plan(self):
        assert FaultPlan.parse("") == ZERO_FAULTS

    def test_parse_rejects_unknown_knob(self):
        with pytest.raises(FaultError):
            FaultPlan.parse("bogus=1")

    def test_parse_rejects_bad_value(self):
        with pytest.raises(FaultError):
            FaultPlan.parse("crc=lots")

    def test_parse_rejects_bare_word(self):
        with pytest.raises(FaultError):
            FaultPlan.parse("crc")
