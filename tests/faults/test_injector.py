"""FaultInjector: deterministic draws, accounting, telemetry counters."""

import pytest

from repro.faults import FaultInjector, FaultPlan, injector_for
from repro.faults.injector import (
    CRC_ERRORS,
    POISONED,
    RECOVERIES,
    STALLS,
    TIMEOUTS,
)
from repro.sim.rng import decision_uniform
from repro.telemetry import Telemetry


class TestInjectorFor:
    def test_none_plan_gives_none(self):
        assert injector_for(None, stream="x") is None

    def test_inactive_plan_gives_none(self):
        assert injector_for(FaultPlan(), stream="x") is None

    def test_active_plan_gives_injector(self):
        injector = injector_for(FaultPlan(crc_rate=0.1), stream="x")
        assert isinstance(injector, FaultInjector)


class TestDeterminism:
    def test_same_key_same_draw(self):
        plan = FaultPlan(poison_rate=0.5, seed=3)
        a = FaultInjector(plan, stream="s")
        b = FaultInjector(plan, stream="s")
        decisions = [a.poisoned(line, 1) for line in range(200)]
        assert decisions == [b.poisoned(line, 1) for line in range(200)]

    def test_order_independent(self):
        """Visiting decision points in any order yields the same set."""
        plan = FaultPlan(timeout_rate=0.3, seed=1)
        forward = FaultInjector(plan, stream="s")
        backward = FaultInjector(plan, stream="s")
        keys = list(range(100))
        hits_fwd = {k for k in keys if forward.timeout(k)}
        hits_bwd = {k for k in reversed(keys) if backward.timeout(k)}
        assert hits_fwd == hits_bwd

    def test_streams_are_independent(self):
        plan = FaultPlan(poison_rate=0.5, seed=3)
        a = FaultInjector(plan, stream="alpha")
        b = FaultInjector(plan, stream="beta")
        decisions_a = [a.poisoned(k) for k in range(200)]
        decisions_b = [b.poisoned(k) for k in range(200)]
        assert decisions_a != decisions_b

    def test_fault_sets_nest_as_rates_grow(self):
        """A fault at rate p is still a fault at any rate > p — the
        property that makes degradation monotone in severity."""
        low = FaultInjector(FaultPlan(poison_rate=0.05, seed=2),
                            stream="s")
        high = FaultInjector(FaultPlan(poison_rate=0.2, seed=2),
                             stream="s")
        low_hits = {k for k in range(500) if low.poisoned(k)}
        high_hits = {k for k in range(500) if high.poisoned(k)}
        assert low_hits <= high_hits
        assert len(high_hits) > len(low_hits)

    def test_decision_uniform_in_unit_interval(self):
        values = [decision_uniform(7, "s", k) for k in range(1000)]
        assert all(0.0 <= v < 1.0 for v in values)
        # Roughly uniform: mean near 0.5.
        assert 0.45 < sum(values) / len(values) < 0.55


class TestCrc:
    def test_zero_rate_is_identity(self):
        injector = FaultInjector(FaultPlan(stall_rate=0.5), stream="s")
        assert injector.crc_transmissions(3, "m2s", 0) == 3
        assert injector.injected == 0

    def test_expected_overhead_matches_geometric(self):
        rate = 0.25
        injector = FaultInjector(FaultPlan(crc_rate=rate, seed=5),
                                 stream="s")
        flits = 4000
        total = sum(injector.crc_transmissions(1, "m2s", k)
                    for k in range(flits))
        assert total / flits == pytest.approx(1.0 / (1.0 - rate),
                                              rel=0.05)

    def test_retries_capped(self):
        injector = FaultInjector(
            FaultPlan(crc_rate=0.999, max_retries=3), stream="s")
        assert injector.crc_transmissions(1, "m2s", 0) <= 4

    def test_every_crc_error_counts_as_recovered(self):
        injector = FaultInjector(FaultPlan(crc_rate=0.3, seed=1),
                                 stream="s")
        for k in range(200):
            injector.crc_transmissions(2, "s2m", k)
        assert injector.injected == injector.recovered > 0


class TestAccounting:
    def test_telemetry_counters(self):
        telemetry = Telemetry.metrics_only()
        plan = FaultPlan(crc_rate=0.2, poison_rate=0.3,
                         timeout_rate=0.3, stall_rate=0.3, seed=8)
        injector = FaultInjector(plan, stream="s",
                                 telemetry=telemetry)
        for k in range(100):
            injector.crc_transmissions(1, "m2s", k)
            if injector.poisoned(k):
                injector.recovery()
            if injector.timeout(k):
                injector.recovery()
            injector.stall_ns(k)
        registry = telemetry.registry
        assert registry.counter(CRC_ERRORS).value > 0
        assert registry.counter(POISONED).value > 0
        assert registry.counter(TIMEOUTS).value > 0
        assert registry.counter(STALLS).value > 0
        assert registry.counter(RECOVERIES).value == injector.recovered
        assert injector.injected == injector.recovered

    def test_stall_returns_plan_duration(self):
        plan = FaultPlan(stall_rate=0.5, stall_ns=321.0, seed=2)
        injector = FaultInjector(plan, stream="s")
        values = {injector.stall_ns(k) for k in range(100)}
        assert values == {0.0, 321.0}
