"""Degraded-mode behavior of the simulators and the analytic backend.

The contract under test (docs/FAULTS.md): faults perturb latency and
bandwidth, never correctness — every injected fault is recovered and
every request completes; an inactive plan is byte-identical to no plan.
"""

import pytest

from repro import build_system, combined_testbed
from repro.cxl.device import build_cxl_backend
from repro.cxl.e2e_sim import CxlEndToEndSim, CxlWriteEndToEndSim
from repro.cxl.link_sim import CreditedLinkSim
from repro.cxl.messages import read_transaction
from repro.cxl.port import CxlPort
from repro.errors import SimulationError
from repro.faults import FaultPlan, ZERO_FAULTS
from repro.mem.dram import AccessPattern
from repro.telemetry import Telemetry

PLAN = FaultPlan(crc_rate=0.02, poison_rate=0.005, timeout_rate=0.002,
                 stall_rate=0.02, stall_ns=400.0, seed=11)


class TestReadSim:
    def test_faults_inflate_tail_latency(self):
        healthy = CxlEndToEndSim().run(threads=4, lines_per_thread=400)
        faulty = CxlEndToEndSim(fault_plan=PLAN).run(
            threads=4, lines_per_thread=400)
        assert faulty.p99_ns > healthy.p99_ns
        assert faulty.gb_per_s < healthy.gb_per_s

    def test_all_faults_recovered_all_reads_complete(self):
        result = CxlEndToEndSim(fault_plan=PLAN).run(
            threads=4, lines_per_thread=400)
        assert result.faults_injected == result.faults_recovered > 0
        assert result.completed == 4 * 400

    def test_zero_plan_identical_to_no_plan(self):
        healthy = CxlEndToEndSim().run(threads=2, lines_per_thread=300)
        zeroed = CxlEndToEndSim(fault_plan=ZERO_FAULTS).run(
            threads=2, lines_per_thread=300)
        assert healthy == zeroed

    def test_degraded_link_slows_without_injecting(self):
        healthy = CxlEndToEndSim().run(threads=2, lines_per_thread=300)
        narrow = CxlEndToEndSim(
            fault_plan=FaultPlan(link_width_fraction=0.5)).run(
            threads=2, lines_per_thread=300)
        assert narrow.gb_per_s < healthy.gb_per_s
        assert narrow.faults_injected == 0

    def test_fault_counters_reach_telemetry(self):
        telemetry = Telemetry.metrics_only()
        CxlEndToEndSim(fault_plan=PLAN, telemetry=telemetry).run(
            threads=2, lines_per_thread=300)
        registry = telemetry.registry
        recoveries = registry.counter("faults.recoveries").value
        assert recoveries > 0

    def test_timeout_storm_still_completes(self):
        plan = FaultPlan(timeout_rate=0.4, timeout_ns=500.0, seed=3)
        result = CxlEndToEndSim(fault_plan=plan).run(
            threads=2, lines_per_thread=200)
        assert result.completed == 2 * 200
        assert result.faults_injected == result.faults_recovered


class TestWriteSim:
    def test_faults_cost_bandwidth_not_writes(self):
        healthy = CxlWriteEndToEndSim().run(threads=2,
                                            lines_per_thread=300)
        faulty = CxlWriteEndToEndSim(fault_plan=PLAN).run(
            threads=2, lines_per_thread=300)
        assert faulty.gb_per_s < healthy.gb_per_s
        assert faulty.completed == 2 * 300
        assert faulty.faults_injected == faulty.faults_recovered > 0

    def test_zero_plan_identical_to_no_plan(self):
        healthy = CxlWriteEndToEndSim().run(threads=2,
                                            lines_per_thread=300)
        zeroed = CxlWriteEndToEndSim(fault_plan=ZERO_FAULTS).run(
            threads=2, lines_per_thread=300)
        assert healthy == zeroed


class TestLinkSim:
    def test_plan_and_legacy_rate_are_exclusive(self):
        with pytest.raises(SimulationError):
            CreditedLinkSim(CxlPort(), device_service_ns=100.0,
                            flit_error_rate=0.1,
                            fault_plan=FaultPlan(crc_rate=0.1))

    def test_faulty_run_recovers_everything(self):
        sim = CreditedLinkSim(CxlPort(), device_service_ns=100.0,
                              fault_plan=PLAN)
        result = sim.run(read_transaction(), transactions=400, mlp=16)
        assert result.completed == 400
        assert result.faults_injected == result.faults_recovered > 0

    def test_degraded_width_halves_wire_bound_ceiling(self):
        # Enough credits/MLP that the wire is the only bottleneck.
        healthy = CreditedLinkSim(CxlPort(), device_service_ns=0.0,
                                  device_parallelism=64,
                                  request_credits=256)
        narrow = CreditedLinkSim(
            CxlPort(), device_service_ns=0.0, device_parallelism=64,
            request_credits=256,
            fault_plan=FaultPlan(link_width_fraction=0.5))
        ratio = narrow.read_bandwidth(mlp=256) \
            / healthy.read_bandwidth(mlp=256)
        assert ratio == pytest.approx(0.5, rel=0.05)


class TestAnalyticBackend:
    def test_fault_plan_derates_bandwidth_and_adds_latency(self):
        # The derate applies to the *combined* ceiling (bus_ceiling),
        # not just the wire: retries hold the device pipeline too, so
        # degradation bites even when DRAM, not the link, binds.
        config = combined_testbed().cxl
        healthy = build_cxl_backend(config)
        degraded = build_cxl_backend(config, fault_plan=PLAN)
        assert degraded.extra_read_ns > healthy.extra_read_ns
        assert degraded.link_bandwidth == healthy.link_bandwidth
        assert (degraded.bus_ceiling(AccessPattern.SEQUENTIAL, 64, 8)
                < healthy.bus_ceiling(AccessPattern.SEQUENTIAL, 64, 8))
        assert (degraded.bus_ceiling(AccessPattern.RANDOM_BLOCK, 256, 8)
                < healthy.bus_ceiling(AccessPattern.RANDOM_BLOCK, 256, 8))

    def test_zero_plan_changes_nothing(self):
        config = combined_testbed().cxl
        healthy = build_cxl_backend(config)
        zeroed = build_cxl_backend(config, fault_plan=ZERO_FAULTS)
        assert zeroed.extra_read_ns == healthy.extra_read_ns
        assert zeroed.link_bandwidth == healthy.link_bandwidth
        assert (zeroed.bus_ceiling(AccessPattern.SEQUENTIAL, 64, 8)
                == healthy.bus_ceiling(AccessPattern.SEQUENTIAL, 64, 8))

    def test_system_build_unaffected_by_module_import(self):
        # Importing repro.faults anywhere must not disturb the healthy
        # perfmodel: the paper experiments run with no plan at all.
        system = build_system(combined_testbed())
        assert system is not None
