"""Every shipped example must run clean against the public API."""

import pathlib
import runpy

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).resolve().parent.parent / "examples"
EXAMPLES = sorted(EXAMPLES_DIR.glob("*.py"))


def test_examples_directory_is_populated():
    names = {path.name for path in EXAMPLES}
    assert "quickstart.py" in names
    assert len(names) >= 3         # quickstart + domain scenarios


@pytest.mark.parametrize("path", EXAMPLES, ids=lambda p: p.name)
def test_example_runs(path, capsys):
    runpy.run_path(str(path), run_name="__main__")
    out = capsys.readouterr().out
    assert out.strip(), f"{path.name} produced no output"


def test_quickstart_mentions_all_schemes(capsys):
    runpy.run_path(str(EXAMPLES_DIR / "quickstart.py"),
                   run_name="__main__")
    out = capsys.readouterr().out
    for label in ("DDR5-L8", "DDR5-R1", "CXL"):
        assert label in out
