"""ClusterSim end-to-end behavior: topology, faults, and degradation."""

import pytest

from repro.cluster import ClusterSim, ClusterTopology, LinkDown
from repro.errors import ClusterError
from repro.faults import FaultPlan

PLAN = FaultPlan(stall_rate=0.02, timeout_rate=0.005, poison_rate=0.002,
                 seed=13)


def small_topology(pool_share=0.5, num_hosts=3):
    return ClusterTopology(num_hosts, keys_per_host=10_000,
                           pool_share=pool_share)


class TestTopology:
    def test_pool_utilization_equals_pool_share(self):
        for share in (0.25, 0.5, 1.0):
            topo = small_topology(pool_share=share)
            assert topo.pool_utilization() == pytest.approx(share,
                                                            abs=1e-6)

    def test_zero_share_keeps_everything_local(self):
        topo = small_topology(pool_share=0.0)
        assert topo.pool_utilization() == 0.0
        assert all(host.slice is None for host in topo.hosts)

    def test_pool_path_is_slower_than_dram(self):
        topo = small_topology()
        assert topo.pool_read_ns() > 2 * topo.dram_read_ns()

    def test_shard_partitioning_covers_the_keyspace(self):
        topo = small_topology(num_hosts=3)
        assert topo.shard_of(0) == 0
        assert topo.shard_of(topo.total_keys - 1) == 2
        with pytest.raises(ClusterError):
            topo.shard_of(topo.total_keys)


class TestHealthyRun:
    def test_every_request_completes_and_percentiles_order(self):
        sim = ClusterSim(small_topology(), seed=4)
        result = sim.run(qps=60_000.0, requests=1_200)
        assert result.requests == 1_200
        assert sum(h.requests for h in result.hosts) == 1_200
        assert result.p99_ns >= result.p50_ns > 0
        assert result.injected == 0 and result.recovered == 0
        assert result.rerouted == 0 and result.link_down_host is None

    def test_p99_grows_with_offered_load(self):
        sim = ClusterSim(small_topology(), seed=4)
        light = sim.run(qps=40_000.0, requests=1_200)
        heavy = sim.run(qps=200_000.0, requests=1_200)
        assert heavy.p99_ns > light.p99_ns

    def test_bigger_pool_share_raises_the_tail(self):
        lo = ClusterSim(small_topology(pool_share=0.1), seed=4).run(
            qps=120_000.0, requests=1_200)
        hi = ClusterSim(small_topology(pool_share=0.9), seed=4).run(
            qps=120_000.0, requests=1_200)
        assert hi.p99_ns > lo.p99_ns
        assert hi.pool_utilization > lo.pool_utilization


class TestFaultPlans:
    def test_per_host_injected_equals_recovered(self):
        sim = ClusterSim(small_topology(),
                         fault_plans={0: PLAN, 1: PLAN, 2: PLAN}, seed=4)
        result = sim.run(qps=80_000.0, requests=1_500)
        assert result.injected > 0
        for host in result.hosts:
            assert host.injected == host.recovered

    def test_faults_inflate_the_tail(self):
        healthy = ClusterSim(small_topology(), seed=4).run(
            qps=80_000.0, requests=1_500)
        hot_plan = FaultPlan(stall_rate=0.2, timeout_rate=0.05, seed=13)
        faulty = ClusterSim(small_topology(),
                            fault_plans={i: hot_plan for i in range(3)},
                            seed=4).run(qps=80_000.0, requests=1_500)
        assert faulty.p99_ns > healthy.p99_ns
        assert faulty.requests == healthy.requests   # never correctness

    def test_plan_for_unknown_host_rejected(self):
        with pytest.raises(ClusterError, match="unknown host"):
            ClusterSim(small_topology(), fault_plans={7: PLAN})


class TestLinkDown:
    def test_downed_host_sheds_and_survivors_absorb(self):
        topo = small_topology()
        baseline = ClusterSim(topo, seed=4).run(qps=100_000.0,
                                                requests=2_000)
        down = ClusterSim(small_topology(), seed=4,
                          link_down=LinkDown(host=1, at_fraction=0.4))
        degraded = down.run(qps=100_000.0, requests=2_000)
        assert degraded.requests == 2_000          # nothing is dropped
        assert degraded.rerouted > 0
        assert degraded.link_down_host == 1
        # Reroutes are charged to the downed host and recovered there.
        downed = degraded.hosts[1]
        assert downed.injected == downed.recovered == degraded.rerouted
        assert downed.requests < baseline.hosts[1].requests
        survivors = [degraded.hosts[0], degraded.hosts[2]]
        assert sum(h.absorbed for h in survivors) == degraded.rerouted

    def test_link_down_needs_a_survivor(self):
        solo = ClusterTopology(1, keys_per_host=10_000)
        with pytest.raises(ClusterError, match="survivor"):
            ClusterSim(solo, link_down=LinkDown(host=0))

    def test_link_down_host_must_exist(self):
        with pytest.raises(ClusterError, match="outside the fleet"):
            ClusterSim(small_topology(), link_down=LinkDown(host=9))

    def test_at_fraction_bounds(self):
        with pytest.raises(ClusterError):
            LinkDown(host=0, at_fraction=0.0)
        with pytest.raises(ClusterError):
            LinkDown(host=0, at_fraction=1.0)


class TestRouting:
    def test_least_loaded_flattens_the_saturated_tail(self):
        qps, requests = 250_000.0, 2_000
        hashed = ClusterSim(small_topology(), router="hash-shard",
                            seed=4).run(qps=qps, requests=requests,
                                        theta=0.99)
        balanced = ClusterSim(small_topology(), router="least-loaded",
                              seed=4).run(qps=qps, requests=requests,
                                          theta=0.99)
        assert balanced.p99_ns < hashed.p99_ns
