"""PoolAllocator invariants: exact accounting, no overlap, no overcommit."""

import pytest

from repro.cluster import PoolAllocator, PoolSlice, SpillPlan, plan_spill
from repro.errors import ClusterError

MIB = 1 << 20


class TestCarving:
    def test_slices_are_address_ordered_and_disjoint(self):
        pool = PoolAllocator(16 * MIB)
        slices = [pool.carve(f"host{i}", 4 * MIB) for i in range(4)]
        assert [s.base for s in slices] == [0, 4 * MIB, 8 * MIB, 12 * MIB]
        for a in slices:
            for b in slices:
                if a is not b:
                    assert not a.overlaps(b)

    def test_overcommit_raises_instead_of_thin_provisioning(self):
        pool = PoolAllocator(8 * MIB)
        pool.carve("host0", 6 * MIB)
        with pytest.raises(ClusterError, match="overcommit"):
            pool.carve("host1", 4 * MIB)
        # The failed carve must not have consumed capacity.
        assert pool.free_bytes == 2 * MIB

    def test_release_returns_bytes_but_not_addresses(self):
        pool = PoolAllocator(8 * MIB)
        piece = pool.carve("host0", 4 * MIB)
        pool.release(piece)
        assert pool.allocated_bytes == 0
        fresh = pool.carve("host1", 4 * MIB)
        assert fresh.base == 4 * MIB   # bump pointer never rewinds

    def test_double_release_rejected(self):
        pool = PoolAllocator(8 * MIB)
        piece = pool.carve("host0", MIB)
        pool.release(piece)
        with pytest.raises(ClusterError, match="unknown slice"):
            pool.release(piece)

    def test_bad_sizes_rejected(self):
        with pytest.raises(ClusterError):
            PoolAllocator(0)
        pool = PoolAllocator(MIB)
        with pytest.raises(ClusterError):
            pool.carve("host0", 0)
        with pytest.raises(ClusterError):
            PoolSlice(host="h", base=-1, size=MIB)


class TestAccounting:
    def test_utilization_is_exact(self):
        pool = PoolAllocator(10 * MIB)
        pool.carve("host0", 3 * MIB)
        assert pool.utilization() == pytest.approx(0.3)
        pool.carve("host1", 2 * MIB)
        assert pool.utilization() == pytest.approx(0.5)

    def test_slice_of_finds_the_live_slice(self):
        pool = PoolAllocator(8 * MIB)
        mine = pool.carve("host1", MIB)
        pool.carve("host2", MIB)
        assert pool.slice_of("host1") == mine
        assert pool.slice_of("host9") is None


class TestSpillPlanning:
    def test_local_dram_fills_first(self):
        plan = plan_spill(10 * MIB, 6 * MIB)
        assert plan == SpillPlan(local_bytes=6 * MIB, pool_bytes=4 * MIB)
        assert plan.pool_fraction == pytest.approx(0.4)

    def test_fitting_demand_never_spills(self):
        plan = plan_spill(4 * MIB, 6 * MIB)
        assert plan.pool_bytes == 0
        assert plan.pool_fraction == 0.0

    def test_zero_demand_is_legal(self):
        assert plan_spill(0, MIB).pool_fraction == 0.0

    def test_negative_inputs_rejected(self):
        with pytest.raises(ClusterError):
            plan_spill(-1, MIB)
        with pytest.raises(ClusterError):
            plan_spill(MIB, -1)
