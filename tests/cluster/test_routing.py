"""Routing policies: deterministic picks, failover, empty-fleet errors."""

import pytest

from repro.cluster import (
    HashShardRouter,
    HostView,
    LeastLoadedRouter,
    make_router,
)
from repro.errors import ClusterError


def fleet(n, down=(), load=None):
    load = load or {}
    return [HostView(i, up=i not in down, in_flight=load.get(i, 0))
            for i in range(n)]


class TestHashShard:
    def test_healthy_owner_serves_its_keys(self):
        router = HashShardRouter()
        assert router.route(key=123, owner=2, hosts=fleet(4)) == 2

    def test_downed_owner_probes_forward_deterministically(self):
        router = HashShardRouter()
        assert router.route(0, 1, fleet(4, down={1})) == 2
        assert router.route(0, 1, fleet(4, down={1, 2})) == 3
        assert router.route(0, 3, fleet(4, down={3})) == 0   # wraps

    def test_dead_fleet_raises(self):
        with pytest.raises(ClusterError, match="no surviving"):
            HashShardRouter().route(0, 0, fleet(3, down={0, 1, 2}))

    def test_probe_order_with_multiple_hosts_down(self):
        # The failover sequence is owner+1, owner+2, ... mod fleet —
        # pinned here for every owner of a 6-host fleet with three
        # hosts down, because serial/parallel byte-identity depends on
        # every worker computing the same rehash.
        router = HashShardRouter()
        hosts = fleet(6, down={1, 2, 4})
        expected = {0: 0, 1: 3, 2: 3, 3: 3, 4: 5, 5: 5}
        for owner, target in expected.items():
            assert router.route(0, owner, hosts) == target, owner

    def test_probe_wraps_past_a_downed_tail(self):
        router = HashShardRouter()
        assert router.route(0, 4, fleet(6, down={4, 5})) == 0
        assert router.route(0, 5, fleet(6, down={5, 0, 1})) == 2


class TestLeastLoaded:
    def test_picks_minimum_in_flight(self):
        router = LeastLoadedRouter()
        hosts = fleet(4, load={0: 5, 1: 2, 2: 7, 3: 3})
        assert router.route(0, owner=0, hosts=hosts) == 1

    def test_tie_breaks_toward_owner_then_lowest_index(self):
        router = LeastLoadedRouter()
        hosts = fleet(4, load={0: 1, 1: 1, 2: 1, 3: 1})
        assert router.route(0, owner=2, hosts=hosts) == 2
        hosts = fleet(4, load={0: 1, 1: 1, 2: 9, 3: 1})
        assert router.route(0, owner=2, hosts=hosts) == 0

    def test_skips_downed_hosts(self):
        router = LeastLoadedRouter()
        hosts = fleet(3, down={0}, load={0: 0, 1: 4, 2: 5})
        assert router.route(0, owner=0, hosts=hosts) == 1

    def test_tie_breaks_by_index_when_owner_is_down(self):
        # With the owner ejected (link down or circuit-breaker open),
        # the affinity tie-break is moot and the lowest surviving index
        # wins — the total order the breaker composition relies on.
        router = LeastLoadedRouter()
        hosts = fleet(4, down={2}, load={0: 1, 1: 1, 2: 0, 3: 1})
        assert router.route(0, owner=2, hosts=hosts) == 0

    def test_all_down_fleet_raises_through_survivors(self):
        with pytest.raises(ClusterError, match="no surviving"):
            LeastLoadedRouter().route(0, 0, fleet(4, down={0, 1, 2, 3}))


class TestFactory:
    def test_registered_names_resolve(self):
        assert isinstance(make_router("hash-shard"), HashShardRouter)
        assert isinstance(make_router("least-loaded"), LeastLoadedRouter)

    def test_unknown_name_lists_available(self):
        with pytest.raises(ClusterError, match="hash-shard"):
            make_router("round-robin")
