"""Routing policies: deterministic picks, failover, empty-fleet errors."""

import pytest

from repro.cluster import (
    HashShardRouter,
    HostView,
    LeastLoadedRouter,
    make_router,
)
from repro.errors import ClusterError


def fleet(n, down=(), load=None):
    load = load or {}
    return [HostView(i, up=i not in down, in_flight=load.get(i, 0))
            for i in range(n)]


class TestHashShard:
    def test_healthy_owner_serves_its_keys(self):
        router = HashShardRouter()
        assert router.route(key=123, owner=2, hosts=fleet(4)) == 2

    def test_downed_owner_probes_forward_deterministically(self):
        router = HashShardRouter()
        assert router.route(0, 1, fleet(4, down={1})) == 2
        assert router.route(0, 1, fleet(4, down={1, 2})) == 3
        assert router.route(0, 3, fleet(4, down={3})) == 0   # wraps

    def test_dead_fleet_raises(self):
        with pytest.raises(ClusterError, match="no surviving"):
            HashShardRouter().route(0, 0, fleet(3, down={0, 1, 2}))


class TestLeastLoaded:
    def test_picks_minimum_in_flight(self):
        router = LeastLoadedRouter()
        hosts = fleet(4, load={0: 5, 1: 2, 2: 7, 3: 3})
        assert router.route(0, owner=0, hosts=hosts) == 1

    def test_tie_breaks_toward_owner_then_lowest_index(self):
        router = LeastLoadedRouter()
        hosts = fleet(4, load={0: 1, 1: 1, 2: 1, 3: 1})
        assert router.route(0, owner=2, hosts=hosts) == 2
        hosts = fleet(4, load={0: 1, 1: 1, 2: 9, 3: 1})
        assert router.route(0, owner=2, hosts=hosts) == 0

    def test_skips_downed_hosts(self):
        router = LeastLoadedRouter()
        hosts = fleet(3, down={0}, load={0: 0, 1: 4, 2: 5})
        assert router.route(0, owner=0, hosts=hosts) == 1


class TestFactory:
    def test_registered_names_resolve(self):
        assert isinstance(make_router("hash-shard"), HashShardRouter)
        assert isinstance(make_router("least-loaded"), LeastLoadedRouter)

    def test_unknown_name_lists_available(self):
        with pytest.raises(ClusterError, match="hash-shard"):
            make_router("round-robin")
