"""Resilience policies: validation, budgets, breakers, sim integration.

The unit bar for :mod:`repro.cluster.resilience`: policy parsing and
validation reject nonsense with uniform errors, the runtime state
machines (retry budget, circuit breaker) behave deterministically, and
a policied :class:`ClusterSim` run keeps the outcome-bucket invariant
— every request settles in exactly one bucket.  The figR experiments
(tests/experiments) cover the end-to-end crossover and retry-storm
shapes; this file pins the pieces.
"""

import pytest

from repro.cluster import (
    CircuitBreaker,
    ClusterSim,
    ClusterTopology,
    HostView,
    PRESETS,
    ResiliencePolicy,
    RetryBudget,
    hedge_delay_ns,
    make_policy,
    parse_policy,
)
from repro.cluster.resilience import ZERO_POLICY
from repro.errors import ClusterError
from repro.faults import FaultPlan


class TestPolicyValidation:
    def test_zero_policy_is_inactive(self):
        assert not ZERO_POLICY.active
        assert not ZERO_POLICY.hedging
        assert not ZERO_POLICY.breaking
        assert not ZERO_POLICY.shedding

    def test_retries_require_a_deadline(self):
        with pytest.raises(ClusterError, match="deadline"):
            ResiliencePolicy(retries=2)

    def test_budget_requires_retries(self):
        with pytest.raises(ClusterError, match="caps nothing"):
            ResiliencePolicy(retry_budget=0.1)

    def test_budget_must_be_positive(self):
        with pytest.raises(ClusterError, match="positive"):
            ResiliencePolicy(deadline_ns=1e5, retries=1,
                             retry_budget=0.0)

    def test_hedge_quantile_below_one(self):
        with pytest.raises(ClusterError, match="hedge_quantile"):
            ResiliencePolicy(hedge_quantile=1.0)

    def test_negative_durations_rejected(self):
        with pytest.raises(ClusterError, match="non-negative"):
            ResiliencePolicy(deadline_ns=-1.0)

    def test_breaker_alpha_range(self):
        with pytest.raises(ClusterError, match="breaker_alpha"):
            ResiliencePolicy(breaker_factor=2.0, breaker_alpha=0.0)


class TestPolicyParsing:
    def test_spec_round_trips_through_dict(self):
        policy = ResiliencePolicy.parse(
            "deadline-ns=60000,retries=2,budget=0.1,shed=32")
        assert policy.deadline_ns == 60_000.0
        assert policy.retries == 2
        assert policy.retry_budget == 0.1
        assert policy.shed_inflight == 32
        assert ResiliencePolicy.from_dict(policy.to_dict()) == policy

    def test_unknown_knob_lists_available(self):
        with pytest.raises(ClusterError, match="available:"):
            ResiliencePolicy.parse("jitter-ns=5")

    def test_bad_value_names_the_knob(self):
        with pytest.raises(ClusterError, match="retries"):
            ResiliencePolicy.parse("retries=two")

    def test_from_dict_rejects_unknown_fields(self):
        with pytest.raises(ClusterError, match="unknown"):
            ResiliencePolicy.from_dict({"deadline_ns": 1e5,
                                        "jitter_ns": 5.0})

    def test_presets_resolve_and_unknown_lists_available(self):
        assert make_policy("hedged") is PRESETS["hedged"]
        assert parse_policy("guarded") is PRESETS["guarded"]
        with pytest.raises(ClusterError,
                           match=r"available: \[.*'hedged'"):
            make_policy("turbo")

    def test_every_preset_validates_and_round_trips(self):
        for name, policy in PRESETS.items():
            assert ResiliencePolicy.from_dict(policy.to_dict()) \
                == policy, name


class TestRetryBudget:
    def test_uncapped_always_allows(self):
        budget = RetryBudget(None)
        assert all(budget.allow() for _ in range(100))
        assert budget.issued == 100
        assert budget.suppressed == 0

    def test_ratio_caps_against_admitted(self):
        budget = RetryBudget(0.5)
        for _ in range(10):
            budget.note_admitted()
        grants = [budget.allow() for _ in range(10)]
        assert grants == [True] * 5 + [False] * 5
        assert budget.issued == 5
        assert budget.suppressed == 5


def breaker(num_hosts=3, factor=2.0, min_requests=4,
            cooldown_ns=1_000.0):
    policy = ResiliencePolicy(breaker_factor=factor,
                              breaker_min_requests=min_requests,
                              breaker_cooldown_ns=cooldown_ns)
    return CircuitBreaker(policy, num_hosts, reference_ns=100.0)


class TestCircuitBreaker:
    def test_opens_only_with_evidence_and_closes_after_cooldown(self):
        cb = breaker()
        for i in range(3):
            cb.observe(0, 1_000.0, now=float(i))
        assert not cb.is_open(0, now=3.0)     # below min_requests
        cb.observe(0, 1_000.0, now=3.0)
        assert cb.is_open(0, now=3.0)
        assert cb.opens == 1
        assert not cb.is_open(0, now=3.0 + 1_000.0)

    def test_open_resets_evidence(self):
        cb = breaker()
        for i in range(4):
            cb.observe(0, 1_000.0, now=float(i))
        assert cb.count[0] == 0 and cb.ewma[0] == 0.0

    def test_filter_views_ejects_open_hosts(self):
        cb = breaker()
        for i in range(4):
            cb.observe(1, 1_000.0, now=float(i))
        views = [HostView(i) for i in range(3)]
        filtered = cb.filter_views(views, now=3.0)
        assert [v.up for v in filtered] == [True, False, True]

    def test_never_ejects_the_last_healthy_host(self):
        cb = breaker()
        for host in range(3):
            for i in range(4):
                cb.observe(host, 1_000.0, now=float(i))
        views = [HostView(0), HostView(1, up=False), HostView(2)]
        # Both healthy hosts are open: ejecting would empty the fleet,
        # so the views come back unchanged.
        assert cb.filter_views(views, now=3.0) is views

    def test_all_down_fleet_passes_through_to_survivors_error(self):
        # The breaker leaves an already-dead fleet alone; the router's
        # survivors() is what reports the outage.
        from repro.cluster import LeastLoadedRouter, Router

        cb = breaker()
        views = [HostView(i, up=False) for i in range(3)]
        assert cb.filter_views(views, now=0.0) is views
        with pytest.raises(ClusterError, match="no surviving"):
            Router.survivors(views)
        with pytest.raises(ClusterError, match="no surviving"):
            LeastLoadedRouter().route(0, 0, views)


class TestHedgeDelay:
    def test_pure_function_of_seed_and_quantile(self):
        a = hedge_delay_ns(7, 0.95, miss_ns=300.0)
        b = hedge_delay_ns(7, 0.95, miss_ns=300.0)
        assert a == b

    def test_monotone_in_quantile(self):
        p50 = hedge_delay_ns(7, 0.50, miss_ns=300.0)
        p95 = hedge_delay_ns(7, 0.95, miss_ns=300.0)
        assert p95 > p50 > 0.0


def run_sim(policy=None, *, fault_plans=None, qps=150_000.0,
            requests=1_200, seed=11):
    topo = ClusterTopology(3, keys_per_host=10_000)
    sim = ClusterSim(topo, seed=seed, policy=policy,
                     fault_plans=fault_plans)
    return sim.run(qps=qps, requests=requests)


class TestSimIntegration:
    def test_zero_policy_matches_no_policy_byte_for_byte(self):
        assert run_sim(ZERO_POLICY) == run_sim(None)

    def test_no_policy_run_reports_no_resilience_stats(self):
        result = run_sim(None)
        assert result.resilience is None
        assert result.successes == result.requests
        assert result.goodput_qps == result.achieved_qps

    def test_outcome_buckets_partition_the_requests(self):
        plans = {h: FaultPlan(stall_rate=0.1, stall_ns=80_000.0,
                              seed=3) for h in range(3)}
        result = run_sim(PRESETS["guarded"], fault_plans=plans,
                         qps=220_000.0)
        stats = result.resilience
        assert stats is not None
        total = (stats.ok + stats.ok_retried + stats.ok_hedged
                 + stats.deadline_exceeded + stats.rejected)
        assert total == result.requests
        assert stats.successes == result.successes
        assert result.goodput_qps <= result.achieved_qps

    def test_string_policy_specs_resolve_in_the_constructor(self):
        topo = ClusterTopology(3, keys_per_host=10_000)
        sim = ClusterSim(topo, seed=11, policy="deadline")
        assert sim.policy == PRESETS["deadline"]
        with pytest.raises(ClusterError, match="available:"):
            ClusterSim(topo, seed=11, policy="turbo")

    def test_hedging_wins_show_up_under_faults(self):
        plans = {h: FaultPlan(stall_rate=0.2, stall_ns=120_000.0,
                              seed=5) for h in range(3)}
        result = run_sim(PRESETS["hedged"], fault_plans=plans)
        stats = result.resilience
        assert stats.hedges_launched > 0
        assert stats.hedge_wins == stats.ok_hedged
        assert stats.hedge_wins <= stats.hedges_launched
