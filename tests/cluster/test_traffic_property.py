"""Property tests for the open-loop zipfian generator.

The two contracts the cluster experiments lean on:

* the drawn key stream really is zipfian — rank frequencies decay with
  rank and sharpen with ``theta``;
* the trace is a pure function of ``(seed, stream, parameters)`` —
  same inputs, byte-identical arrays; different seeds, different draws.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.cluster import OpenLoopZipfian
from repro.errors import ClusterError
from repro.sim.rng import substream
from repro.workloads.distributions import ZipfianKeys

thetas = st.floats(min_value=0.3, max_value=0.99,
                   allow_nan=False, allow_infinity=False)
seeds = st.integers(min_value=0, max_value=2**31 - 1)


class TestZipfianShape:
    @settings(max_examples=20, deadline=None)
    @given(theta=thetas, seed=seeds)
    def test_rank_frequencies_decay_with_rank(self, theta, seed):
        chooser = ZipfianKeys(1000, theta)
        rng = substream("prop/ranks", seed)
        ranks = np.fromiter((chooser.next_rank(rng)
                             for _ in range(4000)), dtype=np.int64)
        top = np.count_nonzero(ranks < 10)
        mid = np.count_nonzero((ranks >= 450) & (ranks < 460))
        # 10 hottest ranks always beat 10 middling ranks, any skew.
        assert top > mid

    @settings(max_examples=10, deadline=None)
    @given(seed=seeds)
    def test_higher_theta_concentrates_mass_on_hot_ranks(self, seed):
        draws = {}
        for theta in (0.5, 0.99):
            chooser = ZipfianKeys(1000, theta)
            rng = substream("prop/skew", seed)
            ranks = np.fromiter((chooser.next_rank(rng)
                                 for _ in range(4000)), dtype=np.int64)
            draws[theta] = np.count_nonzero(ranks < 10) / 4000
        assert draws[0.99] > draws[0.5]

    @settings(max_examples=10, deadline=None)
    @given(theta=thetas, seed=seeds)
    def test_rank_frequency_tracks_the_analytic_hot_mass(self, theta, seed):
        keyspace = 1000
        chooser = ZipfianKeys(keyspace, theta)
        rng = substream("prop/mass", seed)
        n = 6000
        ranks = np.fromiter((chooser.next_rank(rng)
                             for _ in range(n)), dtype=np.int64)
        hot = 50
        expected = chooser.hot_mass(hot)
        observed = np.count_nonzero(ranks < hot) / n
        assert observed == pytest.approx(expected, abs=0.05)


class TestTraceDeterminism:
    @settings(max_examples=15, deadline=None)
    @given(seed=seeds)
    def test_same_seed_is_byte_identical(self, seed):
        def trace():
            return OpenLoopZipfian(qps=100_000.0, num_requests=300,
                                   keyspace=10_000, seed=seed)
        a, b = trace(), trace()
        assert np.array_equal(a.arrival_ns, b.arrival_ns)
        assert np.array_equal(a.keys, b.keys)
        assert np.array_equal(a.writes, b.writes)

    def test_different_seeds_differ(self):
        a = OpenLoopZipfian(qps=100_000.0, num_requests=300,
                            keyspace=10_000, seed=1)
        b = OpenLoopZipfian(qps=100_000.0, num_requests=300,
                            keyspace=10_000, seed=2)
        assert not np.array_equal(a.keys, b.keys)

    def test_streams_are_independent(self):
        # Arrival gaps must not share draws with keys or write flags:
        # changing the write fraction cannot move an arrival.
        a = OpenLoopZipfian(qps=100_000.0, num_requests=300,
                            keyspace=10_000, seed=1, write_fraction=0.0)
        b = OpenLoopZipfian(qps=100_000.0, num_requests=300,
                            keyspace=10_000, seed=1, write_fraction=0.5)
        assert np.array_equal(a.arrival_ns, b.arrival_ns)
        assert np.array_equal(a.keys, b.keys)


class TestTraceShape:
    def test_arrivals_are_monotone_and_open_loop_rate_matches(self):
        trace = OpenLoopZipfian(qps=200_000.0, num_requests=5_000,
                                keyspace=100_000, seed=3)
        assert np.all(np.diff(trace.arrival_ns) >= 0)
        assert trace.offered_qps() == pytest.approx(200_000.0, rel=0.1)

    def test_requests_view_round_trips_the_arrays(self):
        trace = OpenLoopZipfian(qps=50_000.0, num_requests=50,
                                keyspace=1_000, seed=9)
        reqs = trace.requests()
        assert [r.index for r in reqs] == list(range(50))
        assert [r.key for r in reqs] == [int(k) for k in trace.keys]

    def test_bad_parameters_rejected(self):
        with pytest.raises(ClusterError):
            OpenLoopZipfian(qps=0.0, num_requests=10, keyspace=100)
        with pytest.raises(ClusterError):
            OpenLoopZipfian(qps=1.0, num_requests=0, keyspace=100)
        with pytest.raises(ClusterError):
            OpenLoopZipfian(qps=1.0, num_requests=10, keyspace=100,
                            write_fraction=1.5)
