"""Serial ≡ parallel for the cluster experiments, byte for byte.

The acceptance bar for the cluster subsystem: ``repro-experiments figC``
saved serially and with ``--jobs N`` produce identical artifacts, and
repeated in-process runs of :class:`ClusterSim` compare equal — all
randomness is pre-drawn or counter-based, so scheduling can never leak
into results.
"""

import filecmp
from pathlib import Path

from repro.cluster import ClusterSim, ClusterTopology, LinkDown
from repro.experiments.runner import main
from repro.faults import FaultPlan


def saved_files(path: Path) -> list[str]:
    return sorted(p.name for p in path.iterdir())


def assert_dirs_byte_identical(serial: Path, parallel: Path) -> None:
    assert saved_files(serial) == saved_files(parallel)
    for name in saved_files(serial):
        assert filecmp.cmp(serial / name, parallel / name,
                           shallow=False), f"{name} differs"


class TestSimRepeatability:
    def test_identical_runs_compare_equal(self):
        def run():
            topo = ClusterTopology(3, keys_per_host=10_000)
            sim = ClusterSim(topo, seed=11,
                             fault_plans={0: FaultPlan(stall_rate=0.05,
                                                       seed=2)},
                             link_down=LinkDown(host=0, at_fraction=0.5))
            return sim.run(qps=90_000.0, requests=1_000)
        assert run() == run()

    def test_seed_changes_the_result(self):
        def run(seed):
            topo = ClusterTopology(3, keys_per_host=10_000)
            return ClusterSim(topo, seed=seed).run(qps=90_000.0,
                                                   requests=1_000)
        assert run(1) != run(2)


class TestRunnerByteIdentity:
    def test_figc_serial_matches_jobs(self, tmp_path, capsys):
        serial = tmp_path / "serial"
        parallel = tmp_path / "parallel"
        assert main(["--only", "figC", "--no-cache",
                     "--save", str(serial)]) == 0
        assert main(["--only", "figC", "--no-cache", "--jobs", "2",
                     "--save", str(parallel)]) == 0
        capsys.readouterr()
        assert_dirs_byte_identical(serial, parallel)

    def test_degraded_variant_serial_matches_jobs(self, tmp_path, capsys):
        serial = tmp_path / "serial"
        parallel = tmp_path / "parallel"
        assert main(["--only", "figC-deg", "--no-cache",
                     "--save", str(serial)]) == 0
        assert main(["--only", "figC-deg", "--no-cache", "--jobs", "2",
                     "--save", str(parallel)]) == 0
        capsys.readouterr()
        assert_dirs_byte_identical(serial, parallel)

    def test_figr_resilient_serial_matches_jobs(self, tmp_path, capsys):
        # The policy layer adds retries, hedges, breaker state, and
        # shedding on top of the base sim — all of it must stay a pure
        # function of (seed, config) for the sharded sweep to merge
        # byte-for-byte.
        serial = tmp_path / "serial"
        parallel = tmp_path / "parallel"
        assert main(["--only", "figR", "--no-cache",
                     "--save", str(serial)]) == 0
        assert main(["--only", "figR", "--no-cache", "--jobs", "2",
                     "--save", str(parallel)]) == 0
        capsys.readouterr()
        assert_dirs_byte_identical(serial, parallel)
