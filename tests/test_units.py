"""Unit conversions: the paper's headline numbers must round-trip exactly."""

import math

import pytest
from hypothesis import given, strategies as st

from repro import units


class TestTime:
    def test_ns_to_us(self):
        assert units.ns_to_us(1500.0) == 1.5

    def test_ns_to_ms(self):
        assert units.ns_to_ms(2_500_000.0) == 2.5

    def test_ns_to_sec(self):
        assert units.ns_to_sec(1e9) == 1.0

    def test_sec_roundtrip(self):
        assert units.ns_to_sec(units.sec_to_ns(3.25)) == 3.25


class TestSizes:
    def test_binary_prefixes(self):
        assert units.kib(1) == 1024
        assert units.mib(2) == 2 * 1024 * 1024
        assert units.gib(1) == 1024 ** 3

    def test_cacheline_matches_avx512_width(self):
        # One AVX-512 register is 512 bits = 64 B = one cacheline (§4.1).
        assert units.CACHELINE == 64

    def test_cxl_flit_is_68_bytes(self):
        # 64 B CXL data + 2 B CRC + 2 B protocol ID (§2.1).
        assert units.CXL_FLIT_BYTES == 68
        assert units.CXL_FLIT_PAYLOAD == 64


class TestBandwidth:
    def test_gb_per_s_roundtrip(self):
        assert units.to_gb_per_s(units.gb_per_s(221.0)) == pytest.approx(221.0)

    def test_transfer_time(self):
        # 64 GB/s moves 64 B in 1 ns.
        assert units.transfer_ns(64, units.gb_per_s(64)) == pytest.approx(1.0)

    def test_transfer_rejects_zero_bandwidth(self):
        with pytest.raises(ValueError):
            units.transfer_ns(64, 0.0)

    def test_bandwidth_from_rejects_zero_time(self):
        with pytest.raises(ValueError):
            units.bandwidth_from(64, 0.0)

    def test_ddr4_2666_single_channel_theoretical_peak(self):
        # The grey dashed line in Fig. 3b: DDR4-2666 x1 ~ 21.3 GB/s.
        peak = units.ddr_peak_bandwidth(2666, channels=1)
        assert units.to_gb_per_s(peak) == pytest.approx(21.33, abs=0.01)

    def test_ddr5_4800_eight_channels(self):
        peak = units.ddr_peak_bandwidth(4800, channels=8)
        assert units.to_gb_per_s(peak) == pytest.approx(307.2, abs=0.1)

    def test_peak_rejects_bad_args(self):
        with pytest.raises(ValueError):
            units.ddr_peak_bandwidth(0, channels=1)
        with pytest.raises(ValueError):
            units.ddr_peak_bandwidth(4800, channels=0)


class TestFormatting:
    def test_format_bytes(self):
        assert units.format_bytes(512) == "512B"
        assert units.format_bytes(2048) == "2.0KiB"
        assert units.format_bytes(units.gib(16)) == "16.0GiB"

    def test_format_ns(self):
        assert units.format_ns(450.0) == "450.0ns"
        assert units.format_ns(1500.0) == "1.5us"
        assert units.format_ns(2_000_000.0) == "2.00ms"
        assert units.format_ns(3e9) == "3.000s"


class TestProperties:
    @given(st.floats(min_value=1.0, max_value=1e12),
           st.floats(min_value=1e6, max_value=1e12))
    def test_transfer_bandwidth_inverse(self, nbytes, bw):
        """bandwidth_from(transfer_ns(n, bw)) recovers bw."""
        elapsed = units.transfer_ns(nbytes, bw)
        assert math.isclose(units.bandwidth_from(nbytes, elapsed), bw,
                            rel_tol=1e-9)

    @given(st.integers(min_value=1, max_value=10_000))
    def test_kib_mib_consistency(self, n):
        assert units.mib(n) == units.kib(n) * 1024
