"""The §2.1 device taxonomy."""

import pytest

from repro.errors import ProtocolError
from repro.cxl.taxonomy import CxlDeviceType, CxlProtocol


class TestProtocolSets:
    def test_type1_is_io_plus_cache(self):
        assert CxlDeviceType.TYPE1.protocols == frozenset(
            {CxlProtocol.IO, CxlProtocol.CACHE})

    def test_type2_is_all_three(self):
        assert CxlDeviceType.TYPE2.protocols == frozenset(
            {CxlProtocol.IO, CxlProtocol.CACHE, CxlProtocol.MEM})

    def test_type3_is_io_plus_mem(self):
        """'Type-3 devices support CXL.io and CXL.mem' (§2.1)."""
        assert CxlDeviceType.TYPE3.protocols == frozenset(
            {CxlProtocol.IO, CxlProtocol.MEM})

    def test_every_type_speaks_io(self):
        for device_type in CxlDeviceType:
            assert CxlProtocol.IO in device_type.protocols


class TestCapabilities:
    def test_host_managed_memory(self):
        assert not CxlDeviceType.TYPE1.has_host_managed_memory
        assert CxlDeviceType.TYPE2.has_host_managed_memory
        assert CxlDeviceType.TYPE3.has_host_managed_memory

    def test_device_side_caching(self):
        assert CxlDeviceType.TYPE1.can_cache_host_memory
        assert CxlDeviceType.TYPE2.can_cache_host_memory
        assert not CxlDeviceType.TYPE3.can_cache_host_memory

    def test_require_passes_and_fails(self):
        CxlDeviceType.TYPE3.require(CxlProtocol.MEM)
        with pytest.raises(ProtocolError):
            CxlDeviceType.TYPE3.require(CxlProtocol.CACHE)
        with pytest.raises(ProtocolError):
            CxlDeviceType.TYPE1.require(CxlProtocol.MEM)


class TestLookup:
    def test_for_protocols_roundtrip(self):
        for device_type in CxlDeviceType:
            assert CxlDeviceType.for_protocols(
                device_type.protocols) is device_type

    def test_unknown_set_rejected(self):
        with pytest.raises(ProtocolError):
            CxlDeviceType.for_protocols(frozenset({CxlProtocol.IO}))
