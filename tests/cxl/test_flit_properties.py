"""Property tests: flit packing round-trips and poison marking."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.cxl.flit import (
    Flit,
    SLOT_BYTES,
    Slot,
    SlotKind,
    pack_slots,
    packing_efficiency,
    wire_bytes_for_slots,
)
from repro.errors import ProtocolError
from repro.units import CXL_FLIT_BYTES

payload_slots = st.lists(
    st.tuples(st.sampled_from([SlotKind.REQUEST, SlotKind.DATA]),
              st.integers(min_value=0, max_value=50)),
    min_size=1, max_size=40).map(
    lambda pairs: [Slot(kind, message_id) for kind, message_id in pairs])


class TestPackingRoundTrip:
    @settings(max_examples=100, deadline=None)
    @given(payload_slots)
    def test_packing_preserves_slot_order_exactly(self, slots):
        flits = pack_slots(slots)
        unpacked = [slot for flit in flits for slot in flit.slots]
        assert unpacked == slots

    @settings(max_examples=100, deadline=None)
    @given(payload_slots)
    def test_every_flit_but_the_last_is_full(self, slots):
        flits = pack_slots(slots)
        assert all(flit.is_full for flit in flits[:-1])
        assert 1 <= flits[-1].payload_slots <= Flit.MAX_PAYLOAD_SLOTS

    @settings(max_examples=100, deadline=None)
    @given(payload_slots)
    def test_wire_bytes_match_flit_count(self, slots):
        flits = pack_slots(slots)
        assert wire_bytes_for_slots(len(slots)) \
            == sum(flit.wire_bytes for flit in flits) \
            == len(flits) * CXL_FLIT_BYTES

    @settings(max_examples=100, deadline=None)
    @given(st.integers(min_value=1, max_value=10_000))
    def test_efficiency_bounded_by_payload_fraction(self, num_slots):
        efficiency = packing_efficiency(num_slots)
        # 3 payload slots of a 68 B flit is the densest encoding.
        assert 0.0 < efficiency \
            <= Flit.MAX_PAYLOAD_SLOTS * SLOT_BYTES / CXL_FLIT_BYTES

    @settings(max_examples=50, deadline=None)
    @given(payload_slots)
    def test_no_header_or_empty_slots_survive_packing(self, slots):
        for flit in pack_slots(slots):
            assert all(slot.kind in (SlotKind.REQUEST, SlotKind.DATA)
                       for slot in flit.slots)


class TestPoisonProperties:
    @settings(max_examples=100, deadline=None)
    @given(payload_slots)
    def test_poison_allowed_iff_flit_carries_data(self, slots):
        for flit in pack_slots(slots):
            carries_data = any(slot.kind is SlotKind.DATA
                               for slot in flit.slots)
            if carries_data:
                flit.mark_poisoned()
                assert flit.poisoned
            else:
                with pytest.raises(ProtocolError):
                    flit.mark_poisoned()
                assert not flit.poisoned

    def test_constructing_poisoned_header_only_flit_rejected(self):
        with pytest.raises(ProtocolError):
            Flit(slots=[Slot(SlotKind.REQUEST, 1)], poisoned=True)

    def test_constructing_poisoned_data_flit_allowed(self):
        flit = Flit(slots=[Slot(SlotKind.DATA, 1)], poisoned=True)
        assert flit.poisoned
