"""CXL.mem message pairing and traffic accounting."""

import pytest

from repro.errors import ProtocolError
from repro.cxl import MemOpcode, MemTransaction, read_transaction, write_transaction
from repro.cxl.messages import transactions_per_line


class TestOpcodes:
    def test_data_carriers(self):
        assert MemOpcode.MEM_WR.carries_data
        assert MemOpcode.MEM_DATA.carries_data
        assert not MemOpcode.MEM_RD.carries_data
        assert not MemOpcode.CMP.carries_data

    def test_directions(self):
        assert MemOpcode.MEM_RD.direction == "M2S"
        assert MemOpcode.MEM_WR.direction == "M2S"
        assert MemOpcode.CMP.direction == "S2M"
        assert MemOpcode.MEM_DATA.direction == "S2M"

    def test_slot_counts(self):
        assert MemOpcode.MEM_RD.slots == 1
        assert MemOpcode.CMP.slots == 1
        assert MemOpcode.MEM_WR.slots == 5
        assert MemOpcode.MEM_DATA.slots == 5


class TestTransactions:
    def test_read_pairing(self):
        txn = read_transaction()
        assert txn.request is MemOpcode.MEM_RD
        assert txn.response is MemOpcode.MEM_DATA

    def test_write_pairing(self):
        txn = write_transaction()
        assert txn.request is MemOpcode.MEM_WR
        assert txn.response is MemOpcode.CMP

    def test_invalid_pairings_rejected(self):
        with pytest.raises(ProtocolError):
            MemTransaction(MemOpcode.MEM_RD, MemOpcode.CMP)
        with pytest.raises(ProtocolError):
            MemTransaction(MemOpcode.MEM_WR, MemOpcode.MEM_DATA)

    def test_read_wire_bytes_are_asymmetric(self):
        """§2.1: reply contains data for reads, only a header for writes."""
        txn = read_transaction()
        assert txn.wire_bytes_m2s() == 68        # 1 slot -> 1 flit
        assert txn.wire_bytes_s2m() == 136       # 5 slots -> 2 flits

    def test_write_wire_bytes_mirror_read(self):
        txn = write_transaction()
        assert txn.wire_bytes_m2s() == 136
        assert txn.wire_bytes_s2m() == 68

    def test_payload_is_one_cacheline(self):
        assert read_transaction().payload_bytes == 64
        assert write_transaction().payload_bytes == 64

    def test_slot_objects_match_counts(self):
        txn = read_transaction(message_id=9)
        assert len(txn.request_slot_objects()) == 1
        assert len(txn.response_slot_objects()) == 5
        assert all(s.message_id == 9 for s in txn.response_slot_objects())


class TestRfoAccounting:
    def test_nt_store_is_one_transaction(self):
        assert len(transactions_per_line(rfo=False)) == 1

    def test_temporal_store_is_two_transactions(self):
        """RFO: read for ownership then write back (§4.2)."""
        txns = transactions_per_line(rfo=True)
        assert len(txns) == 2
        assert txns[0].request is MemOpcode.MEM_RD
        assert txns[1].request is MemOpcode.MEM_WR

    def test_rfo_roughly_doubles_wire_traffic(self):
        def total_wire(txns):
            return sum(t.wire_bytes_m2s() + t.wire_bytes_s2m() for t in txns)

        nt = total_wire(transactions_per_line(rfo=False))
        rfo = total_wire(transactions_per_line(rfo=True))
        assert rfo == 2 * nt
