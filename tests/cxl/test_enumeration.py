"""The CXL.io enumeration flow: DVSEC -> HDM -> NUMA nodes."""

import pytest

from repro import build_system, units
from repro.config import pooled_cxl_testbed, single_socket_testbed
from repro.errors import ProtocolError
from repro.cxl.enumeration import (
    CXL_VENDOR_ID,
    DeviceDvsec,
    dvsec_for,
    enumerate_devices,
    map_devices,
    numa_nodes_for,
)
from repro.cxl.taxonomy import CxlDeviceType


def type3_dvsec(capacity=units.gib(16), **overrides) -> DeviceDvsec:
    params = dict(vendor_id=CXL_VENDOR_ID,
                  device_type=CxlDeviceType.TYPE3, cxl_version="1.1",
                  memory_capacity_bytes=capacity)
    params.update(overrides)
    return DeviceDvsec(**params)


class TestDvsecValidation:
    def test_valid_type3_passes(self):
        type3_dvsec().validate()

    def test_wrong_vendor_rejected(self):
        with pytest.raises(ProtocolError):
            type3_dvsec(vendor_id=0x8086).validate()

    def test_unsupported_version_rejected(self):
        with pytest.raises(ProtocolError):
            type3_dvsec(cxl_version="0.9").validate()

    def test_memory_device_needs_capacity(self):
        with pytest.raises(ProtocolError):
            type3_dvsec(capacity=0).validate()

    def test_type1_must_not_advertise_memory(self):
        with pytest.raises(ProtocolError):
            type3_dvsec(device_type=CxlDeviceType.TYPE1).validate()

    def test_type1_without_memory_is_fine(self):
        type3_dvsec(device_type=CxlDeviceType.TYPE1,
                    capacity=0).validate()

    def test_dvsec_for_preset(self):
        dvsec = dvsec_for(single_socket_testbed().cxl, serial="x")
        dvsec.validate()
        assert dvsec.memory_capacity_bytes == units.gib(16)
        assert dvsec.cxl_version == "1.1"


class TestEnumeration:
    def test_assigns_consecutive_ids(self):
        devices = enumerate_devices([type3_dvsec(), type3_dvsec()])
        assert [d.device_id for d in devices] == [0, 1]

    def test_bad_device_aborts_enumeration(self):
        with pytest.raises(ProtocolError):
            enumerate_devices([type3_dvsec(),
                               type3_dvsec(vendor_id=0x1234)])


class TestMapping:
    def test_consecutive_hpa_windows(self):
        devices = enumerate_devices(
            [type3_dvsec(units.gib(16)), type3_dvsec(units.gib(16))])
        decoder, mapped = map_devices(devices, hpa_base=units.gib(128))
        assert mapped[0].hpa_base == units.gib(128)
        assert mapped[1].hpa_base == units.gib(144)
        assert decoder.total_capacity() == units.gib(32)

    def test_decode_routes_to_right_device(self):
        devices = enumerate_devices(
            [type3_dvsec(units.gib(16)), type3_dvsec(units.gib(16))])
        decoder, mapped = map_devices(devices, hpa_base=0)
        assert decoder.decode(units.gib(8))[0] == 0
        assert decoder.decode(units.gib(24))[0] == 1

    def test_type1_devices_not_mapped(self):
        devices = enumerate_devices(
            [type3_dvsec(device_type=CxlDeviceType.TYPE1, capacity=0),
             type3_dvsec()])
        decoder, mapped = map_devices(devices, hpa_base=0)
        assert len(mapped) == 1
        assert mapped[0].device_id == 1

    def test_negative_base_rejected(self):
        with pytest.raises(ProtocolError):
            map_devices([], hpa_base=-1)


class TestNumaExposure:
    def test_nodes_are_cpuless_cxl(self):
        devices = enumerate_devices([type3_dvsec()])
        _, mapped = map_devices(devices, hpa_base=0)
        nodes = numa_nodes_for(mapped, first_node_id=2)
        assert nodes[0].node_id == 2
        assert nodes[0].is_cpuless
        assert nodes[0].capacity_bytes == units.gib(16)


class TestSystemIntegration:
    def test_system_exposes_hdm_decoder(self):
        system = build_system(single_socket_testbed())
        assert system.hdm.total_capacity() == units.gib(16)

    def test_hdm_window_sits_above_dram(self):
        system = build_system(single_socket_testbed())
        dram_top = system.topology.node(0).capacity_bytes
        entry = system.hdm.ranges[0]
        assert entry.base == dram_top

    def test_pooled_devices_each_get_a_window(self):
        system = build_system(pooled_cxl_testbed(3))
        assert len(system.hdm.ranges) == 3
        assert len(system.topology.cxl_nodes) == 3
