"""Flit packing: the 68 B layout and slot-conservation properties."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import ProtocolError
from repro.cxl import Flit, Slot, SlotKind, pack_slots
from repro.cxl.flit import (
    FLIT_OVERHEAD_BYTES,
    SLOT_BYTES,
    SLOTS_PER_FLIT,
    packing_efficiency,
    wire_bytes_for_slots,
)


def data_slots(n: int, message_id: int = 1) -> list[Slot]:
    return [Slot(SlotKind.DATA, message_id) for _ in range(n)]


class TestFlitLayout:
    def test_flit_is_68_bytes(self):
        assert Flit().wire_bytes == 68

    def test_four_slots_of_16_bytes_plus_crc_and_pid(self):
        assert SLOTS_PER_FLIT * SLOT_BYTES == 64
        assert FLIT_OVERHEAD_BYTES == 4      # 2 B CRC + 2 B protocol ID

    def test_three_payload_slots_per_flit(self):
        # Slot 0 carries the flit header.
        assert Flit.MAX_PAYLOAD_SLOTS == 3

    def test_overfilling_rejected(self):
        flit = Flit()
        for slot in data_slots(3):
            flit.add(slot)
        assert flit.is_full
        with pytest.raises(ProtocolError):
            flit.add(data_slots(1)[0])

    def test_constructing_overfull_rejected(self):
        with pytest.raises(ProtocolError):
            Flit(slots=data_slots(4))


class TestSlot:
    def test_payload_slot_needs_message_id(self):
        with pytest.raises(ProtocolError):
            Slot(SlotKind.DATA)
        with pytest.raises(ProtocolError):
            Slot(SlotKind.REQUEST)

    def test_header_slot_needs_no_message(self):
        assert Slot(SlotKind.HEADER).message_id == -1


class TestPacking:
    def test_five_slots_need_two_flits(self):
        flits = pack_slots(data_slots(5))
        assert len(flits) == 2
        assert flits[0].payload_slots == 3
        assert flits[1].payload_slots == 2

    def test_order_preserved(self):
        slots = [Slot(SlotKind.DATA, message_id=i) for i in range(7)]
        flits = pack_slots(slots)
        flattened = [s.message_id for flit in flits for s in flit.slots]
        assert flattened == list(range(7))

    def test_empty_input_gives_no_flits(self):
        assert pack_slots([]) == []

    def test_header_slots_rejected(self):
        with pytest.raises(ProtocolError):
            pack_slots([Slot(SlotKind.HEADER)])

    @given(st.integers(min_value=1, max_value=200))
    def test_slot_conservation(self, n):
        """No slot lost, no flit overfull, all but the last full."""
        flits = pack_slots(data_slots(n))
        assert sum(f.payload_slots for f in flits) == n
        for flit in flits[:-1]:
            assert flit.is_full
        assert 1 <= flits[-1].payload_slots <= Flit.MAX_PAYLOAD_SLOTS


class TestWireAccounting:
    def test_zero_slots_zero_bytes(self):
        assert wire_bytes_for_slots(0) == 0

    def test_one_slot_costs_a_whole_flit(self):
        assert wire_bytes_for_slots(1) == 68

    def test_read_response_five_slots(self):
        # header + 4 data slots = 2 flits = 136 B for 64 B of data.
        assert wire_bytes_for_slots(5) == 136

    def test_negative_rejected(self):
        with pytest.raises(ProtocolError):
            wire_bytes_for_slots(-1)

    def test_packing_efficiency_improves_with_batching(self):
        assert packing_efficiency(30) > packing_efficiency(5)

    def test_efficiency_bounded(self):
        for n in (1, 3, 5, 30, 300):
            assert 0 < packing_efficiency(n) <= 3 * SLOT_BYTES / 68

    @given(st.integers(min_value=1, max_value=1000))
    def test_wire_bytes_matches_pack_slots(self, n):
        flits = pack_slots(data_slots(n))
        assert wire_bytes_for_slots(n) == sum(f.wire_bytes for f in flits)
