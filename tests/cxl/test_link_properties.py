"""Property tests: the credited link conserves transactions and credits.

The sim itself enforces conservation — if a credit or MLP slot leaked,
the event queue would drain with work outstanding and ``run`` would
raise.  These properties drive it across arbitrary shapes and fault
plans and assert it always completes everything, recovers every
injected fault, and never exceeds the physical wire.
"""

from hypothesis import given, settings, strategies as st

from repro.cxl.link_sim import CreditedLinkSim
from repro.cxl.messages import read_transaction, write_transaction
from repro.cxl.port import CxlPort
from repro.faults import FaultPlan

fault_plans = st.one_of(
    st.none(),
    st.builds(FaultPlan,
              crc_rate=st.floats(min_value=0.0, max_value=0.3),
              poison_rate=st.just(0.0),
              timeout_rate=st.just(0.0),
              stall_rate=st.floats(min_value=0.0, max_value=0.3),
              stall_ns=st.floats(min_value=0.0, max_value=500.0),
              link_width_fraction=st.sampled_from([1.0, 0.5, 0.25]),
              seed=st.integers(min_value=0, max_value=2**16)))

shapes = st.tuples(
    st.integers(min_value=1, max_value=120),    # transactions
    st.integers(min_value=1, max_value=48),     # mlp
    st.integers(min_value=1, max_value=48),     # request credits
    st.integers(min_value=1, max_value=16))     # device parallelism


class TestConservationProperties:
    @settings(max_examples=40, deadline=None)
    @given(shapes, fault_plans)
    def test_every_transaction_completes(self, shape, plan):
        transactions, mlp, credits, parallelism = shape
        sim = CreditedLinkSim(CxlPort(), device_service_ns=50.0,
                              device_parallelism=parallelism,
                              request_credits=credits,
                              fault_plan=plan)
        result = sim.run(read_transaction(),
                         transactions=transactions, mlp=mlp)
        assert result.completed == transactions
        assert result.elapsed_ns > 0.0
        assert result.faults_injected == result.faults_recovered

    @settings(max_examples=30, deadline=None)
    @given(shapes, fault_plans)
    def test_bandwidth_never_exceeds_the_wire(self, shape, plan):
        transactions, mlp, credits, parallelism = shape
        port = CxlPort()
        sim = CreditedLinkSim(port, device_service_ns=0.0,
                              device_parallelism=parallelism,
                              request_credits=credits,
                              fault_plan=plan)
        result = sim.run(write_transaction(),
                         transactions=transactions, mlp=mlp)
        assert result.app_bandwidth <= port.raw_bandwidth

    @settings(max_examples=25, deadline=None)
    @given(shapes, st.integers(min_value=0, max_value=2**16))
    def test_faulty_run_is_reproducible(self, shape, seed):
        transactions, mlp, credits, parallelism = shape
        plan = FaultPlan(crc_rate=0.1, stall_rate=0.1, seed=seed)

        def run():
            sim = CreditedLinkSim(CxlPort(), device_service_ns=50.0,
                                  device_parallelism=parallelism,
                                  request_credits=credits,
                                  fault_plan=plan)
            return sim.run(read_transaction(),
                           transactions=transactions, mlp=mlp)

        assert run() == run()

    @settings(max_examples=25, deadline=None)
    @given(shapes)
    def test_inactive_plan_matches_no_plan(self, shape):
        transactions, mlp, credits, parallelism = shape

        def run(plan):
            sim = CreditedLinkSim(CxlPort(), device_service_ns=50.0,
                                  device_parallelism=parallelism,
                                  request_credits=credits,
                                  fault_plan=plan)
            return sim.run(read_transaction(),
                           transactions=transactions, mlp=mlp)

        assert run(None) == run(FaultPlan())

    @settings(max_examples=20, deadline=None)
    @given(shapes, st.integers(min_value=0, max_value=2**16))
    def test_faults_only_ever_slow_the_link(self, shape, seed):
        transactions, mlp, credits, parallelism = shape

        def run(plan):
            sim = CreditedLinkSim(CxlPort(), device_service_ns=50.0,
                                  device_parallelism=parallelism,
                                  request_credits=credits,
                                  fault_plan=plan)
            return sim.run(read_transaction(),
                           transactions=transactions, mlp=mlp)

        healthy = run(None)
        degraded = run(FaultPlan(crc_rate=0.2, stall_rate=0.2,
                                 stall_ns=200.0, seed=seed))
        assert degraded.elapsed_ns >= healthy.elapsed_ns
        assert degraded.completed == healthy.completed
