"""CXL port, device controller, HDM decoder, and composed backend."""

import pytest

from repro import units
from repro.config import single_socket_testbed
from repro.errors import ProtocolError
from repro.cxl import (
    CxlDeviceController,
    CxlPort,
    HdmDecoder,
    HdmRange,
    build_cxl_backend,
    read_transaction,
    write_transaction,
)
from repro.mem import AccessPattern


def cxl_config():
    return single_socket_testbed().cxl


class TestCxlPort:
    def test_round_trip_exceeds_two_hops(self):
        port = CxlPort()
        rt = port.transaction_round_trip_ns(read_transaction())
        assert rt > 2 * port.phy.config.hop_latency_ns

    def test_write_and_read_round_trips_are_close(self):
        """Both directions move header+data one way, header back."""
        port = CxlPort()
        read_rt = port.transaction_round_trip_ns(read_transaction())
        write_rt = port.transaction_round_trip_ns(write_transaction())
        assert read_rt == pytest.approx(write_rt, rel=0.05)

    def test_data_ceiling_below_raw_link(self):
        port = CxlPort()
        ceiling = port.data_bandwidth_ceiling(slots_per_line=5)
        assert ceiling < port.raw_bandwidth
        # 64 B payload per 136 B of wire -> just under half the raw rate.
        assert ceiling == pytest.approx(port.raw_bandwidth * 64 / 136)

    def test_invalid_slots_per_line(self):
        with pytest.raises(ValueError):
            CxlPort().data_bandwidth_ceiling(slots_per_line=0)


class TestDeviceController:
    def setup_method(self):
        self.controller = CxlDeviceController(cxl_config())

    def test_service_includes_fpga_penalty(self):
        config = cxl_config()
        assert self.controller.device_service_ns() == pytest.approx(
            config.controller_ns + config.fpga_penalty_ns
            + config.dram.access_ns)

    def test_asic_is_faster(self):
        asic = CxlDeviceController(cxl_config().as_asic())
        assert asic.device_service_ns() < self.controller.device_service_ns()

    def test_load_derate_flat_below_knee(self):
        for threads in range(1, 9):
            assert self.controller.load_thread_derate(threads) == 1.0

    def test_load_derate_drops_past_12_threads(self):
        """Fig 3b: load bandwidth drops to 16.8 of ~21 GB/s (~81%)."""
        derate = self.controller.load_thread_derate(16)
        assert derate == pytest.approx(0.81, abs=0.03)

    def test_load_derate_has_floor(self):
        assert self.controller.load_thread_derate(64) >= 0.7

    def test_load_derate_rejects_zero(self):
        with pytest.raises(ValueError):
            self.controller.load_thread_derate(0)

    def test_write_buffer_one_two_threads_ok(self):
        assert self.controller.write_buffer_derate(1) == 1.0
        assert self.controller.write_buffer_derate(2) == 1.0

    def test_write_buffer_overflows_beyond_two(self):
        """Fig 3b: nt-store peaks at 2 threads then drops immediately."""
        assert self.controller.write_buffer_derate(4) < 1.0
        assert (self.controller.write_buffer_derate(8)
                < self.controller.write_buffer_derate(4))

    def test_write_buffer_derate_floor(self):
        assert self.controller.write_buffer_derate(64) >= 0.45

    def test_store_interference_mild(self):
        assert self.controller.store_interference_derate(2) == 1.0
        assert 0.7 <= self.controller.store_interference_derate(32) < 1.0


class TestHdm:
    def test_single_device_decode(self):
        decoder = HdmDecoder()
        decoder.add_range(HdmRange(base=0x1000, size=units.gib(16),
                                   targets=(0,)))
        device, local = decoder.decode(0x1000 + 12345)
        assert device == 0
        assert local == 12345

    def test_two_way_interleave_alternates(self):
        decoder = HdmDecoder()
        decoder.add_range(HdmRange(base=0, size=units.gib(32),
                                   targets=(0, 1), granularity=256))
        assert decoder.decode(0)[0] == 0
        assert decoder.decode(256)[0] == 1
        assert decoder.decode(512)[0] == 0

    def test_interleave_local_addresses_are_compact(self):
        decoder = HdmDecoder()
        decoder.add_range(HdmRange(base=0, size=units.gib(32),
                                   targets=(0, 1), granularity=256))
        # Chunks 0, 2, 4 land on device 0 at local 0, 256, 512.
        assert decoder.decode(0) == (0, 0)
        assert decoder.decode(512) == (0, 256)
        assert decoder.decode(1024) == (0, 512)

    def test_overlap_rejected(self):
        decoder = HdmDecoder()
        decoder.add_range(HdmRange(base=0, size=4096, targets=(0,)))
        with pytest.raises(ProtocolError):
            decoder.add_range(HdmRange(base=2048, size=4096, targets=(1,)))

    def test_unmapped_address_rejected(self):
        with pytest.raises(ProtocolError):
            HdmDecoder().decode(0x1234)

    def test_non_power_of_two_ways_rejected(self):
        with pytest.raises(ProtocolError):
            HdmRange(base=0, size=4096, targets=(0, 1, 2))

    def test_total_capacity(self):
        decoder = HdmDecoder()
        decoder.add_range(HdmRange(base=0, size=units.gib(16), targets=(0,)))
        decoder.add_range(HdmRange(base=units.gib(16), size=units.gib(16),
                                   targets=(1,)))
        assert decoder.total_capacity() == units.gib(32)


class TestCxlBackend:
    def setup_method(self):
        self.backend = build_cxl_backend(cxl_config())

    def test_label(self):
        assert self.backend.label == "CXL"

    def test_idle_read_latency_in_plausible_range(self):
        """Device-side CXL read path: several hundred ns (§4.2)."""
        latency = self.backend.idle_read_ns()
        assert 250.0 < latency < 700.0

    def test_single_channel(self):
        assert self.backend.channel_count == 1

    def test_bus_ceiling_near_ddr4_peak_for_sequential(self):
        bw = self.backend.bus_ceiling(AccessPattern.SEQUENTIAL, 0, 1)
        assert 18.0 < units.to_gb_per_s(bw) < 21.5

    def test_reader_derate_applies_past_knee(self):
        few = self.backend.concurrency_derate(readers=8, writers=0)
        many = self.backend.concurrency_derate(readers=16, writers=0)
        assert few == 1.0
        assert many < 1.0

    def test_nt_writer_derate_applies(self):
        two = self.backend.concurrency_derate(readers=0, writers=0,
                                              nt_writers=2)
        eight = self.backend.concurrency_derate(readers=0, writers=0,
                                                nt_writers=8)
        assert two == 1.0
        assert eight < 1.0
