"""The credit-based link DES cross-validates the analytic ceilings."""

import pytest

from repro.cxl import CreditedLinkSim, CxlPort, read_transaction
from repro.errors import SimulationError


def link_isolated_sim(**overrides) -> CreditedLinkSim:
    """Device made negligible so the link is the only constraint."""
    params = dict(device_service_ns=1.0, device_parallelism=64,
                  request_credits=64)
    params.update(overrides)
    return CreditedLinkSim(CxlPort(), **params)


class TestLinkIsolated:
    def test_read_bandwidth_matches_analytic_ceiling(self):
        """The DES derives the 64/136 DRS framing ceiling the analytic
        model asserts."""
        sim = link_isolated_sim()
        achieved = sim.read_bandwidth()
        ceiling = CxlPort().data_bandwidth_ceiling(slots_per_line=5)
        assert achieved == pytest.approx(ceiling, rel=0.05)
        assert achieved <= ceiling

    def test_write_bandwidth_mirrors_read(self):
        """Writes ship data M2S instead of S2M — same framing cost."""
        sim = link_isolated_sim()
        assert sim.write_bandwidth() == pytest.approx(
            sim.read_bandwidth(), rel=0.02)

    def test_single_outstanding_request_measures_latency(self):
        """mlp=1 degenerates to a latency test: ~2 hops + service."""
        sim = CreditedLinkSim(CxlPort(), device_service_ns=130.0,
                              device_parallelism=8)
        result = sim.run(read_transaction(), transactions=100, mlp=1)
        per_txn = result.elapsed_ns / result.completed
        hop = CxlPort().phy.config.hop_latency_ns
        assert per_txn > 2 * hop + 130.0
        assert per_txn < 2 * hop + 130.0 + 50.0   # + serialization only

    def test_bandwidth_grows_with_mlp_until_link_bound(self):
        sim = link_isolated_sim()
        low = sim.read_bandwidth(mlp=2)
        high = sim.read_bandwidth(mlp=64)
        assert high > 3 * low


class TestDeviceBound:
    def test_slow_device_becomes_bottleneck(self):
        fast_device = link_isolated_sim()
        slow_device = CreditedLinkSim(CxlPort(), device_service_ns=130.0,
                                      device_parallelism=8,
                                      request_credits=64)
        assert slow_device.read_bandwidth() < 0.5 * \
            fast_device.read_bandwidth()

    def test_device_parallelism_helps(self):
        narrow = CreditedLinkSim(CxlPort(), device_service_ns=130.0,
                                 device_parallelism=4,
                                 request_credits=64)
        wide = CreditedLinkSim(CxlPort(), device_service_ns=130.0,
                               device_parallelism=16,
                               request_credits=64)
        assert wide.read_bandwidth() > 2 * narrow.read_bandwidth()


class TestCredits:
    def test_few_credits_throttle_throughput(self):
        starved = link_isolated_sim(request_credits=2,
                                    device_service_ns=130.0)
        flush = link_isolated_sim(request_credits=64,
                                  device_service_ns=130.0)
        assert starved.read_bandwidth() < 0.5 * flush.read_bandwidth()

    def test_credits_bound_outstanding_work(self):
        """With C credits, at most C transactions are in flight — the
        run still completes (conservation, no lost credits)."""
        sim = link_isolated_sim(request_credits=3)
        result = sim.run(read_transaction(), transactions=500, mlp=64)
        assert result.completed == 500


class TestFailureInjection:
    def test_error_free_link_is_default(self):
        sim = link_isolated_sim()
        assert sim.flit_error_rate == 0.0

    def test_crc_errors_cost_bandwidth(self):
        clean = link_isolated_sim()
        noisy = link_isolated_sim(flit_error_rate=0.2)
        assert noisy.read_bandwidth() < 0.95 * clean.read_bandwidth()

    def test_degradation_scales_with_error_rate(self):
        mild = link_isolated_sim(flit_error_rate=0.05).read_bandwidth()
        severe = link_isolated_sim(flit_error_rate=0.4).read_bandwidth()
        assert severe < mild

    def test_all_transactions_still_complete(self):
        """Retry is lossless: errors cost time, never data."""
        sim = link_isolated_sim(flit_error_rate=0.3)
        result = sim.run(read_transaction(), transactions=400, mlp=16)
        assert result.completed == 400

    def test_expected_overhead_matches_geometric_model(self):
        """At rate p the per-flit sends average 1/(1-p)."""
        rate = 0.25
        clean = link_isolated_sim().read_bandwidth()
        noisy = link_isolated_sim(flit_error_rate=rate,
                                  seed=9).read_bandwidth()
        assert noisy == pytest.approx(clean * (1 - rate), rel=0.1)

    def test_invalid_rate_rejected(self):
        with pytest.raises(SimulationError):
            link_isolated_sim(flit_error_rate=1.0)
        with pytest.raises(SimulationError):
            link_isolated_sim(flit_error_rate=-0.1)


class TestValidation:
    def test_bad_parameters_rejected(self):
        with pytest.raises(SimulationError):
            CreditedLinkSim(CxlPort(), device_service_ns=-1.0)
        with pytest.raises(SimulationError):
            CreditedLinkSim(CxlPort(), device_service_ns=1.0,
                            device_parallelism=0)
        with pytest.raises(SimulationError):
            CreditedLinkSim(CxlPort(), device_service_ns=1.0,
                            request_credits=0)

    def test_zero_transactions_rejected(self):
        with pytest.raises(SimulationError):
            link_isolated_sim().run(read_transaction(), transactions=0,
                                    mlp=1)

    def test_conservation(self):
        """Every launched transaction completes exactly once."""
        sim = link_isolated_sim()
        result = sim.run(read_transaction(), transactions=777, mlp=13)
        assert result.completed == 777
        assert result.payload_bytes == 777 * 64
