"""End-to-end CXL read DES: Fig 3b's shape from mechanism alone."""

import pytest

from repro.errors import SimulationError
from repro.cxl.e2e_sim import CxlEndToEndSim
from repro.units import ddr_peak_bandwidth


@pytest.fixture(scope="module")
def sweep():
    sim = CxlEndToEndSim()
    return sim.sweep([1, 2, 4, 8, 12, 16, 32], lines_per_thread=1000)


class TestLatencyBoundRegion:
    def test_low_thread_counts_scale_linearly(self, sweep):
        one = sweep[1].gb_per_s
        assert sweep[2].gb_per_s == pytest.approx(2 * one, rel=0.25)
        assert sweep[4].gb_per_s == pytest.approx(4 * one, rel=0.35)

    def test_per_thread_slope_is_latency_bound(self, sweep):
        """One thread's bandwidth ~ MLP x 64 B / round-trip latency."""
        sim = CxlEndToEndSim()
        hop = sim.port.phy.config.hop_latency_ns
        round_trip = 2 * (hop + sim.port.pack_ns) + sim.controller_ns \
            + sim.timings.tcl_ns + sim.timings.burst_ns
        expected = sim.mlp_per_thread * 64 / (round_trip / 1e9)
        assert sweep[1].app_bandwidth == pytest.approx(expected, rel=0.3)


class TestSaturation:
    def test_saturates_at_ddr4_pin_rate(self, sweep):
        """The plateau is the paper's grey dashed line (21.3 GB/s) —
        not a tuned constant, the simulated bus simply fills."""
        peak = max(result.gb_per_s for result in sweep.values())
        theoretical = ddr_peak_bandwidth(2666, 1) / 1e9
        assert peak == pytest.approx(theoretical, rel=0.05)
        assert peak <= theoretical

    def test_saturation_by_about_12_threads(self, sweep):
        """Fig 3b: 'attains its maximum bandwidth with approximately 8
        threads' — the sim saturates in the same neighborhood."""
        assert sweep[12].gb_per_s > 0.95 * sweep[32].gb_per_s
        assert sweep[4].gb_per_s < 0.6 * sweep[32].gb_per_s


class TestRowLocality:
    def test_sequential_streams_mostly_row_hit(self, sweep):
        assert sweep[1].row_hit_rate > 0.98

    def test_hit_rate_degrades_beyond_bank_count(self, sweep):
        """§4.3.1: more threads -> 'requests with fewer patterns' at the
        device's 16-bank DDR4."""
        assert sweep[32].row_hit_rate < sweep[8].row_hit_rate

    def test_closed_page_bounds_the_agilex_droop(self):
        """The measured 16.8 GB/s at high thread counts lies between
        this sim's open-page and closed-page controller regimes."""
        open_page = CxlEndToEndSim().run(threads=16,
                                         lines_per_thread=1000)
        closed = CxlEndToEndSim(closed_page=True).run(
            threads=16, lines_per_thread=1000)
        assert closed.gb_per_s < open_page.gb_per_s
        assert closed.gb_per_s < 16.8 < open_page.gb_per_s + 0.5


class TestWriteSim:
    """nt-store mechanics: the 2-thread anchor emerges, buffers matter."""

    def test_single_writer_is_issue_bound(self):
        """One thread paces at the WC drain rate (~10.7 GB/s analytic)."""
        from repro.cxl.e2e_sim import CxlWriteEndToEndSim
        result = CxlWriteEndToEndSim().run(threads=1,
                                           lines_per_thread=1200)
        assert result.gb_per_s == pytest.approx(10.7, rel=0.1)

    def test_two_writers_reach_the_pin_rate(self):
        """Fig 3b's nt-store anchor — '22 GB/s with only 2 threads,
        close to the theoretical max' — emerges from the mechanism."""
        from repro.cxl.e2e_sim import CxlWriteEndToEndSim
        result = CxlWriteEndToEndSim().run(threads=2,
                                           lines_per_thread=1200)
        theoretical = ddr_peak_bandwidth(2666, 1) / 1e9
        assert result.gb_per_s == pytest.approx(theoretical, rel=0.05)

    def test_shallow_buffer_collapses_throughput(self):
        """The §4.3.2 buffer story: credits gate posted writes, so a
        shallow device buffer starves the drain pipeline."""
        from repro.cxl.e2e_sim import CxlWriteEndToEndSim
        deep = CxlWriteEndToEndSim(buffer_entries=128).run(
            threads=8, lines_per_thread=1000)
        shallow = CxlWriteEndToEndSim(buffer_entries=16).run(
            threads=8, lines_per_thread=1000)
        tiny = CxlWriteEndToEndSim(buffer_entries=4).run(
            threads=8, lines_per_thread=1000)
        assert shallow.gb_per_s < 0.3 * deep.gb_per_s
        assert tiny.gb_per_s < shallow.gb_per_s

    def test_write_conservation(self):
        from repro.cxl.e2e_sim import CxlWriteEndToEndSim
        result = CxlWriteEndToEndSim().run(threads=3,
                                           lines_per_thread=400)
        assert result.completed == 1200

    def test_write_validation(self):
        from repro.cxl.e2e_sim import CxlWriteEndToEndSim
        with pytest.raises(SimulationError):
            CxlWriteEndToEndSim(buffer_entries=0)
        with pytest.raises(SimulationError):
            CxlWriteEndToEndSim(issue_gap_ns=0.0)
        with pytest.raises(SimulationError):
            CxlWriteEndToEndSim().run(threads=0)


class TestValidation:
    def test_conservation(self):
        result = CxlEndToEndSim().run(threads=3, lines_per_thread=200)
        assert result.completed == 600

    def test_bad_parameters(self):
        with pytest.raises(SimulationError):
            CxlEndToEndSim(mlp_per_thread=0)
        with pytest.raises(SimulationError):
            CxlEndToEndSim(controller_ns=-1.0)
        with pytest.raises(SimulationError):
            CxlEndToEndSim().run(threads=0)

    def test_deeper_mlp_raises_low_thread_bandwidth(self):
        shallow = CxlEndToEndSim(mlp_per_thread=4).run(
            threads=2, lines_per_thread=800)
        deep = CxlEndToEndSim(mlp_per_thread=16).run(
            threads=2, lines_per_thread=800)
        assert deep.gb_per_s > 2 * shallow.gb_per_s
