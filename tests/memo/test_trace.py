"""Trace construction and functional replay."""

import numpy as np
import pytest

from repro import build_system, combined_testbed, units
from repro.cpu import AccessKind, MemoryScheme
from repro.errors import WorkloadError
from repro.memo.trace import AccessTrace, replay


@pytest.fixture(scope="module")
def system():
    return build_system(combined_testbed())


class TestTraceConstruction:
    def test_sequential_addresses(self):
        trace = AccessTrace.sequential(AccessKind.LOAD, num_lines=4)
        assert list(trace.addresses) == [0, 64, 128, 192]
        assert len(trace) == 4

    def test_from_operations(self):
        trace = AccessTrace.from_operations(
            [(0, AccessKind.LOAD), (64, AccessKind.NT_STORE)])
        assert len(trace) == 2

    def test_footprint_counts_distinct_lines(self):
        trace = AccessTrace.from_operations(
            [(0, AccessKind.LOAD), (10, AccessKind.LOAD),
             (64, AccessKind.LOAD)])
        assert trace.footprint_bytes == 128

    def test_random_block_shape(self):
        trace = AccessTrace.random_block(
            AccessKind.LOAD, num_blocks=10, block_bytes=1024,
            region_bytes=units.mib(1))
        assert len(trace) == 10 * 16        # 16 lines per 1 KiB block
        # Lines within a block are consecutive.
        assert trace.addresses[1] - trace.addresses[0] == 64

    def test_random_block_deterministic_by_seed(self):
        a = AccessTrace.random_block(AccessKind.LOAD, num_blocks=5,
                                     block_bytes=256,
                                     region_bytes=units.kib(64), seed=3)
        b = AccessTrace.random_block(AccessKind.LOAD, num_blocks=5,
                                     block_bytes=256,
                                     region_bytes=units.kib(64), seed=3)
        assert np.array_equal(a.addresses, b.addresses)

    def test_validation(self):
        with pytest.raises(WorkloadError):
            AccessTrace.from_operations([])
        with pytest.raises(WorkloadError):
            AccessTrace.sequential(AccessKind.LOAD, num_lines=0)
        with pytest.raises(WorkloadError):
            AccessTrace.random_block(AccessKind.LOAD, num_blocks=1,
                                     block_bytes=100,
                                     region_bytes=units.kib(4))
        with pytest.raises(WorkloadError):
            AccessTrace(np.array([-64]), np.array([0], dtype=np.int8))


class TestReplay:
    def test_cold_sequential_loads_all_miss(self, system):
        trace = AccessTrace.sequential(AccessKind.LOAD, num_lines=64)
        result = replay(trace, system, MemoryScheme.DDR5_L8)
        assert result.level_hits["memory"] == 64
        assert result.memory_reads == 64
        assert result.hit_rate == 0.0

    def test_second_pass_hits(self, system):
        trace = AccessTrace.sequential(AccessKind.LOAD, num_lines=64)
        hierarchy = system.socket.new_hierarchy()
        replay(trace, system, MemoryScheme.DDR5_L8, hierarchy=hierarchy)
        warm = replay(trace, system, MemoryScheme.DDR5_L8,
                      hierarchy=hierarchy)
        assert warm.hit_rate == 1.0
        assert warm.memory_reads == 0

    def test_cxl_replay_slower_than_dram(self, system):
        trace = AccessTrace.sequential(AccessKind.LOAD, num_lines=256)
        dram = replay(trace, system, MemoryScheme.DDR5_L8)
        cxl = replay(trace, system, MemoryScheme.CXL)
        assert cxl.estimated_ns > dram.estimated_ns
        assert cxl.estimated_bandwidth < dram.estimated_bandwidth

    def test_nt_store_trace_writes_only(self, system):
        trace = AccessTrace.sequential(AccessKind.NT_STORE, num_lines=64)
        result = replay(trace, system, MemoryScheme.CXL)
        assert result.memory_reads == 0
        assert result.memory_writes == 64

    def test_store_trace_shows_rfo(self, system):
        trace = AccessTrace.sequential(AccessKind.STORE, num_lines=64)
        result = replay(trace, system, MemoryScheme.CXL)
        assert result.memory_reads == 64        # RFO fills

    def test_dependent_chain_overlap_zero_is_slowest(self, system):
        trace = AccessTrace.sequential(AccessKind.LOAD, num_lines=128)
        serialized = replay(trace, system, MemoryScheme.CXL, overlap=0.0)
        pipelined = replay(trace, system, MemoryScheme.CXL, overlap=0.9)
        assert serialized.estimated_ns > 2 * pipelined.estimated_ns

    def test_bad_overlap_rejected(self, system):
        trace = AccessTrace.sequential(AccessKind.LOAD, num_lines=4)
        with pytest.raises(WorkloadError):
            replay(trace, system, MemoryScheme.CXL, overlap=1.0)

    def test_mixed_trace_level_hits_sum(self, system):
        trace = AccessTrace.from_operations(
            [(i * 64, AccessKind.LOAD) for i in range(32)]
            + [(i * 64, AccessKind.LOAD) for i in range(32)])
        result = replay(trace, system, MemoryScheme.DDR5_L8)
        assert sum(result.level_hits.values()) == len(trace)
