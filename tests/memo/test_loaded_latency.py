"""Loaded-latency curves (MLC-style extension of MEMO)."""

import math

import pytest

from repro import build_system, combined_testbed
from repro.cpu import MemoryScheme
from repro.errors import ConfigError
from repro.memo.loaded_latency import LoadedLatencyBench

L8, R1, CXL = (MemoryScheme.DDR5_L8, MemoryScheme.DDR5_R1,
               MemoryScheme.CXL)


@pytest.fixture(scope="module")
def bench():
    return LoadedLatencyBench(build_system(combined_testbed()))


class TestCurves:
    def test_latency_rises_with_injection(self, bench):
        for scheme in (L8, R1, CXL):
            series = bench.curve(scheme)
            assert series.is_monotone_increasing()
            assert series.y[-1] > 2 * series.y[0]

    def test_unloaded_point_matches_latency_model(self, bench):
        series = bench.curve(CXL)
        assert series.y[0] == pytest.approx(
            bench.latency.read_path_ns(CXL))

    def test_saturation_bandwidth_ordering(self, bench):
        assert (bench.saturation_bandwidth(L8)
                > bench.saturation_bandwidth(R1)
                > bench.saturation_bandwidth(CXL))

    def test_report_has_three_curves(self, bench):
        report = bench.run()
        assert [s.name for s in report.panel("loaded-latency")] == [
            "DDR5-L8", "DDR5-R1", "CXL"]

    def test_absolute_curve_spans_to_saturation(self, bench):
        series = bench.curve_absolute(L8)
        assert series.x[0] == 0.0
        assert series.x[-1] == pytest.approx(
            bench.saturation_bandwidth(L8) / 1e9 * 0.98)

    def test_report_notes_list_saturations(self, bench):
        report = bench.run()
        assert any("DDR5-L8 saturation" in note for note in report.notes)


class TestEqualInjection:
    def test_cxl_hits_the_wall_first(self, bench):
        """At 30 GB/s of injected traffic the CXL device is simply
        over capacity while DDR5-L8 barely notices."""
        outcome = bench.latency_at_equal_injection(30.0)
        assert math.isinf(outcome["CXL"])
        assert not math.isinf(outcome["DDR5-L8"])

    def test_low_injection_everyone_absorbs(self, bench):
        outcome = bench.latency_at_equal_injection(5.0)
        assert all(not math.isinf(v) for v in outcome.values())
        assert outcome["DDR5-L8"] < outcome["DDR5-R1"] < outcome["CXL"]

    def test_cxl_latency_degrades_faster_per_gb(self, bench):
        """The same absolute injection is a larger fraction of CXL's
        ceiling, so its latency inflates more."""
        outcome = bench.latency_at_equal_injection(12.0)
        unloaded_gap = (bench.latency.read_path_ns(CXL)
                        / bench.latency.read_path_ns(L8))
        loaded_gap = outcome["CXL"] / outcome["DDR5-L8"]
        assert loaded_gap > unloaded_gap

    def test_negative_injection_rejected(self, bench):
        with pytest.raises(ConfigError):
            bench.latency_at_equal_injection(-1.0)


class TestValidation:
    def test_too_few_points_rejected(self):
        with pytest.raises(ConfigError):
            LoadedLatencyBench(build_system(combined_testbed()), points=1)

    def test_fraction_out_of_range_rejected(self, bench):
        with pytest.raises(ConfigError):
            bench.loaded_read_ns(CXL, 1.5)
