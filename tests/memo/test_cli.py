"""The memo CLI: argument parsing and end-to-end runs."""

import pytest

from repro.memo.cli import build_parser, main


class TestParser:
    def test_all_subcommands_exist(self):
        parser = build_parser()
        for bench in ("latency", "chase", "bw", "random", "movdir", "dsa"):
            args = parser.parse_args([bench])
            assert args.bench == bench

    def test_missing_subcommand_errors(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_scheme_filter(self):
        args = build_parser().parse_args(["latency", "--scheme", "CXL"])
        assert args.scheme == ["CXL"]

    def test_thread_list(self):
        args = build_parser().parse_args(["bw", "--threads", "1", "8"])
        assert args.threads == [1, 8]


class TestEndToEnd:
    def test_latency_run(self, capsys):
        assert main(["latency"]) == 0
        out = capsys.readouterr().out
        assert "DDR5-L8" in out and "CXL" in out

    def test_bw_run_with_few_threads(self, capsys):
        assert main(["bw", "--threads", "1", "2", "--scheme", "CXL"]) == 0
        out = capsys.readouterr().out
        assert "fig3-CXL" in out

    def test_unknown_scheme_exits(self):
        with pytest.raises(SystemExit):
            main(["latency", "--scheme", "HBM"])

    def test_dsa_run(self, capsys):
        assert main(["dsa", "--batches", "1", "16"]) == 0
        out = capsys.readouterr().out
        assert "dsa-async-b16" in out

    def test_replay_run(self, capsys):
        assert main(["replay", "--pattern", "random", "--kind", "nt-st",
                     "--lines", "512", "--scheme", "CXL"]) == 0
        out = capsys.readouterr().out
        assert "estimated bandwidth" in out

    def test_replay_defaults(self, capsys):
        assert main(["replay", "--lines", "256"]) == 0
        out = capsys.readouterr().out
        assert "sequential" in out


class TestTelemetryFlags:
    def test_bw_trace_writes_valid_files(self, tmp_path, capsys):
        import json

        from repro.telemetry.report import (
            trace_track_names,
            validate_chrome_trace,
        )

        trace = tmp_path / "out.json"
        assert main(["bw", "--threads", "1", "2", "--scheme", "CXL",
                     "--trace", str(trace), "--metrics"]) == 0
        out = capsys.readouterr().out
        assert "telemetry metrics" in out
        obj = validate_chrome_trace(json.loads(trace.read_text()))
        # The acceptance bar: events from >= 4 distinct component tracks.
        assert len(trace_track_names(obj)) >= 4
        metrics = json.loads(
            (tmp_path / "out.metrics.json").read_text())
        assert "cxl.e2e.read.latency_ns" in metrics

    def test_replay_trace(self, tmp_path, capsys):
        trace = tmp_path / "replay.json"
        assert main(["replay", "--lines", "256",
                     "--trace", str(trace)]) == 0
        assert trace.exists()

    def test_metrics_only_no_files(self, tmp_path, capsys):
        # The latency bench is purely analytic: enabling metrics is
        # valid but yields an empty table, and no files are written.
        assert main(["latency", "--metrics"]) == 0
        assert "no metrics recorded" in capsys.readouterr().out
        assert list(tmp_path.iterdir()) == []
