"""MEMO latency bench and the pointer-chase implementations."""

import pytest

from repro import build_system, combined_testbed, units
from repro.cpu import AccessKind, MemoryScheme
from repro.config import CacheConfig, CacheLevelConfig
from repro.cache import CacheHierarchy
from repro.errors import ConfigError
from repro.memo import LatencyBench, PointerChaseBench, simulate_chase
from repro.memo.pointer_chase import build_chain
from repro.sim.rng import substream


@pytest.fixture(scope="module")
def system():
    return build_system(combined_testbed())


class TestLatencyBench:
    def test_report_has_all_schemes(self, system):
        report = LatencyBench(system).run()
        names = [s.name for s in report.panel("fig2-left")]
        assert names == ["DDR5-L8", "DDR5-R1", "CXL"]

    def test_each_series_has_four_probes(self, system):
        report = LatencyBench(system).run()
        for series in report.panel("fig2-left"):
            assert len(series) == 4     # ld, st+wb, nt-st, ptr-chase

    def test_prefetch_on_is_rejected(self, system):
        with pytest.raises(ConfigError):
            LatencyBench(system, prefetch_enabled=True)

    def test_probe_matches_model(self, system):
        bench = LatencyBench(system)
        assert bench.probe(MemoryScheme.CXL, AccessKind.LOAD) == \
            bench.model.flushed_load_ns(MemoryScheme.CXL)

    def test_scheme_subset(self, system):
        report = LatencyBench(
            system, schemes=[MemoryScheme.CXL]).run()
        assert [s.name for s in report.panel("fig2-left")] == ["CXL"]

    def test_render_mentions_probe_order(self, system):
        text = LatencyBench(system).run().render()
        assert "ld" in text and "ptr-chase" in text


class TestReportRendering:
    def test_scalar_panel_rendering(self):
        from repro.analysis.series import Series
        from repro.errors import ExperimentError
        from repro.memo import BenchReport
        report = BenchReport(title="t")
        report.add_series("panel", Series("case-a", x=[0.0], y=[42.0]))
        text = report.render_scalar_panel("panel", "value")
        assert "case-a" in text and "42.0" in text
        report.add_series("panel", Series("bad", x=[0.0, 1.0],
                                          y=[1.0, 2.0]))
        with pytest.raises(ExperimentError):
            report.render_scalar_panel("panel", "value")

    def test_missing_panel_and_series_errors(self):
        from repro.errors import ExperimentError
        from repro.memo import BenchReport
        report = BenchReport(title="t")
        with pytest.raises(ExperimentError):
            report.panel("nope")
        from repro.analysis.series import Series
        report.add_series("p", Series("s", x=[1.0], y=[1.0]))
        with pytest.raises(ExperimentError):
            report.series("p", "absent")


class TestPointerChaseBench:
    def test_staircase_rises(self, system):
        report = PointerChaseBench(system).run()
        for series in report.panel("fig2-right"):
            assert series.is_monotone_increasing()

    def test_schemes_converge_at_small_wss(self, system):
        report = PointerChaseBench(system).run()
        first = [series.y[0] for series in report.panel("fig2-right")]
        assert max(first) == pytest.approx(min(first), rel=0.02)

    def test_schemes_diverge_at_large_wss(self, system):
        report = PointerChaseBench(system).run()
        last = {series.name: series.y[-1]
                for series in report.panel("fig2-right")}
        assert last["CXL"] > last["DDR5-R1"] > last["DDR5-L8"]

    def test_bad_wss_rejected(self, system):
        with pytest.raises(ConfigError):
            PointerChaseBench(system, wss_points=[0])


class TestBuildChain:
    def test_chain_is_single_cycle(self):
        chain = build_chain(64 * 64, substream("t1"))
        seen = set()
        line = 0
        for _ in range(len(chain)):
            assert line not in seen
            seen.add(line)
            line = int(chain[line])
        assert line == 0                 # back to the start
        assert len(seen) == len(chain)   # visited every line once

    def test_chain_is_deterministic_per_seed(self):
        a = build_chain(64 * 64, substream("t2", seed=5))
        b = build_chain(64 * 64, substream("t2", seed=5))
        assert (a == b).all()

    def test_too_small_wss_rejected(self):
        with pytest.raises(ConfigError):
            build_chain(64, substream("t3"))


class TestFunctionalChase:
    """The functional cache walk validates the analytic staircase."""

    @staticmethod
    def tiny_hierarchy() -> CacheHierarchy:
        return CacheHierarchy(CacheConfig(
            l1=CacheLevelConfig("L1d", units.kib(4), ways=4, latency_ns=2.0),
            l2=CacheLevelConfig("L2", units.kib(16), ways=4, latency_ns=8.0),
            llc=CacheLevelConfig("LLC", units.kib(64), ways=8,
                                 latency_ns=25.0),
        ))

    def test_l1_resident_chase_is_cheap(self):
        hierarchy = self.tiny_hierarchy()
        average = simulate_chase(hierarchy, units.kib(2), accesses=2000,
                                 memory_latency_ns=400.0)
        assert average == pytest.approx(2.0, abs=1.0)

    def test_oversized_chase_pays_memory_latency(self):
        hierarchy = self.tiny_hierarchy()
        average = simulate_chase(hierarchy, units.kib(512), accesses=2000,
                                 memory_latency_ns=400.0)
        assert average > 300.0

    def test_llc_resident_chase_pays_full_traversal(self):
        """WSS between L2 and LLC: a cyclic chase's reuse distance equals
        the WSS, so L1/L2 never hit — every access is an LLC hit paying
        the full L1+L2+LLC traversal (2+8+25 ns)."""
        hierarchy = self.tiny_hierarchy()
        functional = simulate_chase(hierarchy, units.kib(48), accesses=4000,
                                    memory_latency_ns=400.0)
        assert functional == pytest.approx(35.0, rel=0.05)

    def test_functional_bounded_by_analytic_regimes(self):
        """The analytic stacked-capacity estimate (which optimistically
        grants upper-level hits) lower-bounds the cyclic functional walk,
        and the full-traversal-plus-memory path upper-bounds it."""
        wss = units.kib(48)
        functional = simulate_chase(self.tiny_hierarchy(), wss,
                                    accesses=4000, memory_latency_ns=400.0)
        analytic = self.tiny_hierarchy().expected_latency_ns(wss, 400.0)
        assert analytic <= functional <= 35.0 + 400.0

    def test_zero_accesses_rejected(self):
        with pytest.raises(ConfigError):
            simulate_chase(self.tiny_hierarchy(), units.kib(8), accesses=0,
                           memory_latency_ns=100.0)
