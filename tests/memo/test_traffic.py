"""Functional traffic counting validates the analytic RFO factors."""

import pytest

from repro import units
from repro.config import CacheConfig, CacheLevelConfig
from repro.cache import CacheHierarchy
from repro.cpu import AccessKind
from repro.errors import WorkloadError
from repro.memo.traffic import (
    measure_cache_pollution,
    measure_stream_traffic,
)


def hierarchy() -> CacheHierarchy:
    return CacheHierarchy(CacheConfig(
        l1=CacheLevelConfig("L1d", units.kib(4), ways=4, latency_ns=2.0),
        l2=CacheLevelConfig("L2", units.kib(16), ways=4, latency_ns=8.0),
        llc=CacheLevelConfig("LLC", units.kib(64), ways=8,
                             latency_ns=25.0),
    ))


class TestTrafficFactors:
    def test_load_is_one_read_per_line(self):
        count = measure_stream_traffic(hierarchy(), AccessKind.LOAD, 256)
        assert count.reads_per_line == 1.0
        assert count.writes_per_line == 0.0
        assert count.traffic_factor == 1.0

    def test_nt_store_is_one_write_per_line(self):
        count = measure_stream_traffic(hierarchy(), AccessKind.NT_STORE,
                                       256)
        assert count.reads_per_line == 0.0
        assert count.writes_per_line == 1.0

    def test_temporal_store_pays_rfo_and_writeback(self):
        """The measured factor matches AccessKind.STORE.traffic_factor."""
        count = measure_stream_traffic(hierarchy(), AccessKind.STORE, 256)
        assert count.reads_per_line == 1.0     # RFO fills
        assert count.writes_per_line == 1.0    # eviction/flush writebacks
        assert count.traffic_factor == \
            AccessKind.STORE.traffic_factor

    def test_store_without_flush_hides_writebacks(self):
        """Short dirty streams park in the cache — the flush matters."""
        cheap = measure_stream_traffic(hierarchy(), AccessKind.STORE, 64,
                                       flush_after=False)
        honest = measure_stream_traffic(hierarchy(), AccessKind.STORE, 64,
                                        flush_after=True)
        assert cheap.memory_writes < honest.memory_writes

    def test_measured_matches_declared_for_all_kinds(self):
        for kind in (AccessKind.LOAD, AccessKind.STORE,
                     AccessKind.NT_STORE):
            count = measure_stream_traffic(hierarchy(), kind, 512)
            assert count.traffic_factor == pytest.approx(
                kind.traffic_factor, abs=0.05)

    def test_movdir_rejected(self):
        with pytest.raises(WorkloadError):
            measure_stream_traffic(hierarchy(), AccessKind.MOVDIR64B, 16)

    def test_zero_lines_rejected(self):
        with pytest.raises(WorkloadError):
            measure_stream_traffic(hierarchy(), AccessKind.LOAD, 0)


class TestCachePollution:
    def test_nt_store_does_not_pollute(self):
        """§6: nt-stores avoid 'polluting the precious cache resources'."""
        survival = measure_cache_pollution(
            hierarchy(), victim_lines=256,
            writer_kind=AccessKind.NT_STORE, written_lines=4096)
        assert survival == 1.0

    def test_temporal_store_evicts_victims(self):
        survival = measure_cache_pollution(
            hierarchy(), victim_lines=256,
            writer_kind=AccessKind.STORE, written_lines=4096)
        assert survival < 0.1

    def test_small_writes_pollute_less(self):
        small = measure_cache_pollution(
            hierarchy(), victim_lines=256,
            writer_kind=AccessKind.STORE, written_lines=128)
        large = measure_cache_pollution(
            hierarchy(), victim_lines=256,
            writer_kind=AccessKind.STORE, written_lines=4096)
        assert small > large

    def test_load_kind_rejected_as_writer(self):
        with pytest.raises(WorkloadError):
            measure_cache_pollution(hierarchy(), victim_lines=16,
                                    writer_kind=AccessKind.LOAD,
                                    written_lines=16)
