"""MEMO bandwidth benches: Fig 3 / 4 / 5 report structure and shapes."""

import pytest

from repro import build_system, combined_testbed, dual_socket_testbed
from repro.cpu import AccessKind, MemoryScheme
from repro.errors import ConfigError
from repro.memo import (
    DsaBench,
    MovdirBench,
    RandomBlockBench,
    SequentialBandwidthBench,
)

L8, R1, CXL = MemoryScheme.DDR5_L8, MemoryScheme.DDR5_R1, MemoryScheme.CXL


@pytest.fixture(scope="module")
def system():
    return build_system(combined_testbed())


class TestSequentialBench:
    def test_panels_per_scheme(self, system):
        report = SequentialBandwidthBench(system).run()
        assert set(report.panels) == {"fig3-DDR5-L8", "fig3-DDR5-R1",
                                      "fig3-CXL"}

    def test_three_curves_per_panel(self, system):
        report = SequentialBandwidthBench(system).run()
        for panel in report.panels.values():
            assert [s.name for s in panel] == ["ld", "st+wb", "nt-st"]

    def test_l8_load_peak_matches_paper(self, system):
        bench = SequentialBandwidthBench(system)
        threads, bandwidth = bench.peak(L8, AccessKind.LOAD)
        assert bandwidth == pytest.approx(221.0, abs=4.0)
        assert 24 <= threads <= 32

    def test_cxl_nt_peak_at_2_threads(self, system):
        bench = SequentialBandwidthBench(system)
        threads, bandwidth = bench.peak(CXL, AccessKind.NT_STORE)
        assert threads == 2
        assert bandwidth == pytest.approx(21.0, abs=1.5)

    def test_theoretical_line_noted(self, system):
        report = SequentialBandwidthBench(system).run()
        assert any("21.3" in note for note in report.notes)

    def test_thread_counts_clamped_to_cores(self):
        # The dual-socket testbed has 40 cores; default sweeps fit.
        system = build_system(dual_socket_testbed())
        bench = SequentialBandwidthBench(system, schemes=[L8])
        assert max(bench.thread_counts) <= 40

    def test_empty_thread_counts_rejected(self, system):
        with pytest.raises(ConfigError):
            SequentialBandwidthBench(system, thread_counts=[])


class TestRandomBench:
    def test_grid_is_3x3(self, system):
        report = RandomBlockBench(system).run()
        assert len(report.panels) == 9

    def test_point_query(self, system):
        bench = RandomBlockBench(system)
        value = bench.point(CXL, AccessKind.NT_STORE, threads=2,
                            block_bytes=32 * 1024)
        assert value > 10.0

    def test_l8_random_load_scales_with_block_size(self, system):
        report = RandomBlockBench(system).run()
        series = report.series("fig5-DDR5-L8-ld", "4T")
        assert series.y[-1] >= series.y[0]

    def test_cxl_nt_2threads_has_interior_peak(self, system):
        """Fig 5: the 2-thread nt-store curve peaks then drops."""
        report = RandomBlockBench(system).run()
        series = report.series("fig5-CXL-nt-st", "2T")
        peak_x, _ = series.peak
        assert series.x[0] < peak_x < series.x[-1]

    def test_sub_line_block_rejected(self, system):
        with pytest.raises(ConfigError):
            RandomBlockBench(system, block_sizes=[32])


class TestMovdirBench:
    def test_route_order(self, system):
        report = MovdirBench(system).run()
        assert [s.name for s in report.panel("fig4a")] == [
            "D2D", "D2C", "C2D", "C2C"]

    def test_d2_routes_similar_c2_routes_lower(self, system):
        bench = MovdirBench(system)
        d2d = bench.route_bandwidth(L8, L8)
        d2c = bench.route_bandwidth(L8, CXL)
        c2d = bench.route_bandwidth(CXL, L8)
        c2c = bench.route_bandwidth(CXL, CXL)
        assert d2c == pytest.approx(d2d, rel=0.15)
        assert c2d < 0.6 * d2d
        assert c2c <= c2d

    def test_requires_cxl(self):
        system = build_system(dual_socket_testbed())
        with pytest.raises(ConfigError):
            MovdirBench(system)


class TestDsaBench:
    def test_method_list(self, system):
        bench = DsaBench(system)
        assert bench.methods() == [
            "memcpy", "movdir64B", "dsa-sync-b1", "dsa-sync-b16",
            "dsa-sync-b128", "dsa-async-b1", "dsa-async-b16",
            "dsa-async-b128"]

    def test_report_routes(self, system):
        report = DsaBench(system).run()
        assert [s.name for s in report.panel("fig4b")] == [
            "D2C", "C2D", "C2C", "D2D"]

    def test_sync_b1_matches_memcpy(self, system):
        """Fig 4b: non-batched sync offload ~ plain memcpy."""
        bench = DsaBench(system)
        memcpy = bench.throughput("memcpy", L8, CXL)
        sync_b1 = bench.throughput("dsa-sync-b1", L8, CXL)
        assert sync_b1 == pytest.approx(memcpy, rel=0.5)

    def test_async_and_batching_improve(self, system):
        """Fig 4b: 'any level of asynchronicity or batching brings
        improvements'."""
        bench = DsaBench(system)
        base = bench.throughput("dsa-sync-b1", L8, CXL)
        assert bench.throughput("dsa-sync-b16", L8, CXL) > base
        assert bench.throughput("dsa-async-b1", L8, CXL) > base

    def test_c2d_highest_among_cxl_routes(self, system):
        bench = DsaBench(system)
        method = "dsa-async-b128"
        c2d = bench.throughput(method, CXL, L8)
        d2c = bench.throughput(method, L8, CXL)
        c2c = bench.throughput(method, CXL, CXL)
        assert c2d > d2c > c2c

    def test_unknown_method_rejected(self, system):
        with pytest.raises(ConfigError):
            DsaBench(system).throughput("rdma", L8, CXL)

    def test_zero_transfer_rejected(self, system):
        with pytest.raises(ConfigError):
            DsaBench(system, transfer_bytes=0)
