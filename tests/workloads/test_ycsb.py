"""YCSB workload definitions."""

import pytest

from repro.errors import WorkloadError
from repro.sim.rng import substream
from repro.workloads import WORKLOADS, Operation, YcsbWorkload
from repro.workloads.distributions import LatestKeys, UniformKeys, ZipfianKeys


class TestCoreWorkloads:
    def test_workload_a_is_50_50(self):
        a = WORKLOADS["A"]
        assert a.read == 0.5
        assert a.update == 0.5

    def test_workload_b_is_95_5(self):
        b = WORKLOADS["B"]
        assert b.read == 0.95
        assert b.update == 0.05

    def test_workload_c_is_read_only(self):
        assert WORKLOADS["C"].read == 1.0
        assert WORKLOADS["C"].write_fraction == 0.0

    def test_workload_d_defaults_to_latest(self):
        """Fig 7: 'YCSB workload D defaults to read the most recently
        inserted elements (lat)'."""
        assert WORKLOADS["D"].distribution == "latest"
        assert WORKLOADS["D"].insert == 0.05

    def test_workload_f_has_rmw(self):
        assert WORKLOADS["F"].rmw == 0.5

    def test_workload_e_is_absent(self):
        """The paper omits E: 'Workload E is omitted here as it is range
        query.'"""
        assert "E" not in WORKLOADS

    def test_non_d_workloads_are_uniform(self):
        """§5.1: all workloads except D use uniform requests."""
        for name, workload in WORKLOADS.items():
            if name != "D":
                assert workload.distribution == "uniform"


class TestVariants:
    def test_with_distribution_renames(self):
        d = WORKLOADS["D"]
        assert d.with_distribution("zipfian").name == "D-zipf"
        assert d.with_distribution("uniform").name == "D-uni"
        assert d.with_distribution("latest").name == "D-lat"

    def test_chooser_types(self):
        assert isinstance(WORKLOADS["A"].make_chooser(100), UniformKeys)
        assert isinstance(WORKLOADS["D"].make_chooser(100), LatestKeys)
        zipf = WORKLOADS["D"].with_distribution("zipfian")
        assert isinstance(zipf.make_chooser(100), ZipfianKeys)


class TestValidation:
    def test_proportions_must_sum_to_one(self):
        with pytest.raises(WorkloadError):
            YcsbWorkload("bad", read=0.5, update=0.4)

    def test_scans_rejected(self):
        with pytest.raises(WorkloadError):
            YcsbWorkload("E", read=0.95, scan=0.05)

    def test_unknown_distribution_rejected(self):
        with pytest.raises(WorkloadError):
            YcsbWorkload("X", read=1.0, distribution="pareto")


class TestOperationSampling:
    def test_mix_respected(self):
        a = WORKLOADS["A"]
        rng = substream("ops")
        ops = [a.next_operation(rng) for _ in range(4000)]
        reads = sum(1 for op in ops if op is Operation.READ)
        assert reads == pytest.approx(2000, abs=200)

    def test_read_only_never_mutates(self):
        c = WORKLOADS["C"]
        rng = substream("ops-c")
        assert all(c.next_operation(rng) is Operation.READ
                   for _ in range(500))
