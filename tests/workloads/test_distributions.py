"""Key distributions: bounds, skew, determinism."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import WorkloadError
from repro.sim.rng import substream
from repro.workloads import LatestKeys, UniformKeys, ZipfianKeys
from repro.workloads.distributions import fnv1a_64


def draw(chooser, n=4000, name="keys"):
    rng = substream(name)
    return np.array([chooser.next_key(rng) for _ in range(n)])


class TestUniform:
    def test_keys_in_range(self):
        keys = draw(UniformKeys(1000))
        assert keys.min() >= 0
        assert keys.max() < 1000

    def test_roughly_flat(self):
        keys = draw(UniformKeys(10), n=10_000)
        counts = np.bincount(keys, minlength=10)
        assert counts.min() > 0.7 * counts.max()

    def test_hot_mass_is_proportional(self):
        chooser = UniformKeys(1000)
        assert chooser.hot_mass(100) == pytest.approx(0.1)
        assert chooser.hot_mass(2000) == 1.0

    def test_zero_keyspace_rejected(self):
        with pytest.raises(WorkloadError):
            UniformKeys(0)


class TestZipfian:
    def test_keys_in_range(self):
        keys = draw(ZipfianKeys(1000))
        assert keys.min() >= 0
        assert keys.max() < 1000

    def test_skew_concentrates_mass(self):
        """A few keys should dominate the request stream."""
        keys = draw(ZipfianKeys(100_000), n=8000)
        _, counts = np.unique(keys, return_counts=True)
        top = np.sort(counts)[::-1]
        assert top[:10].sum() > 0.15 * len(keys)

    def test_scrambling_spreads_hot_keys(self):
        """Hot keys are spread over the keyspace (not all near 0)."""
        keys = draw(ZipfianKeys(100_000), n=4000)
        values, counts = np.unique(keys, return_counts=True)
        hottest = values[np.argmax(counts)]
        assert hottest != 0        # rank 0 hashed elsewhere

    def test_hot_mass_exceeds_uniform(self):
        zipf = ZipfianKeys(1_000_000)
        uniform = UniformKeys(1_000_000)
        assert zipf.hot_mass(10_000) > 5 * uniform.hot_mass(10_000)

    def test_hot_mass_monotone(self):
        zipf = ZipfianKeys(100_000)
        masses = [zipf.hot_mass(n) for n in (10, 100, 1000, 10_000)]
        assert masses == sorted(masses)
        assert all(0 <= m <= 1 for m in masses)

    def test_bad_theta_rejected(self):
        with pytest.raises(WorkloadError):
            ZipfianKeys(100, theta=1.5)

    def test_grow_keeps_working(self):
        zipf = ZipfianKeys(100)
        zipf.grow(200)
        keys = draw(zipf, n=500)
        assert keys.max() < 200

    def test_shrink_rejected(self):
        with pytest.raises(WorkloadError):
            ZipfianKeys(100).grow(50)

    @settings(max_examples=20)
    @given(st.integers(min_value=2, max_value=10_000))
    def test_ranks_within_keyspace(self, keyspace):
        zipf = ZipfianKeys(keyspace)
        rng = substream("prop")
        for _ in range(50):
            assert 0 <= zipf.next_key(rng) < keyspace


class TestLatest:
    def test_favors_recent_keys(self):
        """Workload D reads 'the most recently inserted elements'."""
        latest = LatestKeys(100_000)
        keys = draw(latest, n=4000)
        assert np.median(keys) > 0.95 * 100_000

    def test_grow_shifts_focus(self):
        latest = LatestKeys(1000)
        latest.grow(2000)
        keys = draw(latest, n=1000)
        assert np.median(keys) > 1900

    def test_hot_mass_at_least_zipfian(self):
        latest = LatestKeys(1_000_000)
        zipf = ZipfianKeys(1_000_000)
        assert latest.hot_mass(10_000) >= zipf.hot_mass(10_000) - 1e-12


class TestFnv:
    def test_deterministic(self):
        assert fnv1a_64(42) == fnv1a_64(42)

    def test_spreads_consecutive_inputs(self):
        hashes = {fnv1a_64(i) % 1000 for i in range(100)}
        assert len(hashes) > 80
