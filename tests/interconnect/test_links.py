"""Links: serialization math, UPI and PCIe parameters."""

import pytest

from repro import units
from repro.config import LinkConfig
from repro.interconnect import (
    Link,
    Mesh,
    PcieGen,
    PciePhy,
    UpiLink,
    default_upi,
    pcie_lane_rate,
)


def make_link(gbps=64.0, hop=50.0) -> Link:
    return Link(LinkConfig("test", units.gb_per_s(gbps), hop))


class TestLink:
    def test_serialization_time(self):
        link = make_link(gbps=64.0)
        # 64 B at 64 GB/s = 1 ns.
        assert link.serialization_ns(64) == pytest.approx(1.0)

    def test_one_way_includes_hop(self):
        link = make_link(gbps=64.0, hop=50.0)
        assert link.one_way_ns(64) == pytest.approx(51.0)

    def test_round_trip_two_hops(self):
        link = make_link(gbps=64.0, hop=50.0)
        rt = link.round_trip_ns(request_bytes=64, response_bytes=128)
        assert rt == pytest.approx(50.0 + 1.0 + 50.0 + 2.0)

    def test_negative_payload_rejected(self):
        with pytest.raises(ValueError):
            make_link().serialization_ns(-1)

    def test_utilization_accounting(self):
        link = make_link(gbps=64.0)
        link.one_way_ns(units.gb_per_s(32.0) * 1e-9 * 1000, record=True)
        # 32 GB/s-worth of bytes over 1000 ns on a 64 GB/s link = 50%.
        assert link.utilization(1000.0) == pytest.approx(0.5)

    def test_utilization_tracks_busiest_direction(self):
        link = make_link(gbps=64.0)
        link.one_way_ns(1000, record=True)
        link.one_way_ns(4000, record=True, reverse=True)
        window = 1000.0
        expected = 4000 / (link.bandwidth * window / 1e9)
        assert link.utilization(window) == pytest.approx(expected)


class TestMesh:
    def test_snc_shortens_path(self):
        assert Mesh(12.0, snc=True).traverse_ns() < Mesh(12.0).traverse_ns()

    def test_negative_latency_rejected(self):
        with pytest.raises(ValueError):
            Mesh(-1.0)


class TestUpi:
    def test_cacheline_round_trip_has_two_hops(self):
        upi = default_upi()
        rt = upi.cacheline_round_trip_ns()
        assert rt > 2 * upi.config.hop_latency_ns

    def test_effective_bandwidth_below_raw(self):
        upi = default_upi()
        assert upi.effective_bandwidth() < upi.bandwidth
        assert upi.effective_bandwidth() == pytest.approx(
            upi.bandwidth * 64 / 80)


class TestPcie:
    def test_gen5_x16_is_64_gb_per_s_nominal(self):
        # §2.1: "as of PCIe Gen 5, the bandwidth has reached 32 GT/s
        # (i.e., 64 GB/s with 16 lanes)" — nominal, before line coding.
        phy = PciePhy(PcieGen.GEN5, 16)
        nominal = PcieGen.GEN5.gt_per_s * 16 / 8
        assert nominal == pytest.approx(64.0)
        # Usable rate is nominal x 128/130.
        assert units.to_gb_per_s(phy.bandwidth) == pytest.approx(
            64.0 * 128 / 130)

    def test_effective_bandwidth_roughly_doubles_each_generation(self):
        # §2.1: "the bandwidth has doubled in each generation".  Gen3 moved
        # from 8b/10b to 128b/130b coding, so the doubling holds for
        # *effective* bandwidth (Gen2->Gen3 is 4 -> 7.88 GB/s per lane x8).
        rates = [pcie_lane_rate(PcieGen(g)) for g in range(1, 6)]
        for slower, faster in zip(rates, rates[1:]):
            assert faster == pytest.approx(2 * slower, rel=0.02)

    def test_gen12_use_8b10b(self):
        assert PcieGen.GEN1.encoding_efficiency == pytest.approx(0.8)
        assert PcieGen.GEN3.encoding_efficiency == pytest.approx(128 / 130)

    def test_lane_scaling(self):
        assert pcie_lane_rate(PcieGen.GEN5) * 16 == pytest.approx(
            PciePhy(PcieGen.GEN5, 16).bandwidth)

    def test_invalid_width_rejected(self):
        with pytest.raises(ValueError):
            PciePhy(PcieGen.GEN5, 3)
