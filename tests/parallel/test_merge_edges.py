"""Merge edge cases: empty histograms, gauge ordering, counter exactness.

The happy-path serial-vs-merged equivalence lives in test_merge.py;
these pin the corners a sweep can actually hit — a worker whose unit
recorded a histogram but no samples, gauge last-write-wins when workers
*finish* out of order, and counters that sum past the float53 integer
ceiling without losing a single count.
"""

from repro.parallel import (
    TelemetrySpec,
    export_telemetry,
    fresh_telemetry,
    merge_all,
    merge_telemetry,
)
from repro.telemetry import Telemetry

METERED = TelemetrySpec(traced=False, metered=True)


def metered_session():
    return fresh_telemetry(METERED)


class TestEmptyHistogram:
    def test_empty_histogram_creates_metric_in_parent(self):
        worker = metered_session()
        worker.registry.histogram("unit.latency_ns",
                                  buckets=(10.0, 100.0))
        parent = metered_session()
        merge_telemetry(parent, export_telemetry(worker))
        merged = parent.registry.get("unit.latency_ns")
        assert merged.count == 0
        assert tuple(merged.buckets) == (10.0, 100.0)

    def test_empty_then_populated_histogram_accumulates(self):
        # Unit 1 records nothing, unit 2 records two samples — same as
        # a serial loop where the first iteration takes the no-op path.
        first, second = metered_session(), metered_session()
        first.registry.histogram("unit.latency_ns", buckets=(10.0,))
        histogram = second.registry.histogram("unit.latency_ns",
                                              buckets=(10.0,))
        histogram.record(5.0)
        histogram.record(50.0)
        parent = metered_session()
        merge_all(parent, (export_telemetry(first),
                           export_telemetry(second)))
        assert parent.registry.get("unit.latency_ns").count == 2


class TestGaugeOrdering:
    def test_gauge_last_write_wins_in_unit_order(self):
        # Three units set the gauge to their unit index; the merged
        # value must be unit 3's regardless of completion order,
        # because the call site replays exports in submission order.
        exports = []
        for value in (1.0, 2.0, 3.0):
            worker = metered_session()
            worker.registry.gauge("unit.last").set(value)
            exports.append(export_telemetry(worker))
        parent = metered_session()
        merge_all(parent, exports)               # unit order
        assert parent.registry.get("unit.last").value == 3.0

    def test_out_of_order_replay_diverges(self):
        # The contract merge_all documents: completion-order replay is
        # WRONG for gauges. Pin the divergence so nobody "fixes" the
        # call sites into it.
        exports = []
        for value in (1.0, 2.0, 3.0):
            worker = metered_session()
            worker.registry.gauge("unit.last").set(value)
            exports.append(export_telemetry(worker))
        parent = metered_session()
        merge_all(parent, reversed(exports))     # completion order
        assert parent.registry.get("unit.last").value == 1.0


class TestCounterExactness:
    def test_sum_beyond_float53_stays_exact(self):
        # 2**53 is where float64 stops representing every integer.
        # Worker counters carry Python ints, so merged sums must stay
        # exact well past it.
        big = 2 ** 62
        exports = []
        for _ in range(3):
            worker = metered_session()
            worker.registry.counter("unit.ops").inc(big)
            worker.registry.counter("unit.ops").inc(1)
            exports.append(export_telemetry(worker))
        parent = metered_session()
        merge_all(parent, exports)
        merged = parent.registry.get("unit.ops").value
        assert merged == 3 * big + 3
        assert isinstance(merged, int)

    def test_unit_increments_never_rounded_away(self):
        # The classic float failure: huge + 1 == huge. Int accumulation
        # must see every one of the small increments.
        worker_big = metered_session()
        worker_big.registry.counter("unit.ops").inc(2 ** 53)
        parent = metered_session()
        merge_telemetry(parent, export_telemetry(worker_big))
        for _ in range(10):
            worker = metered_session()
            worker.registry.counter("unit.ops").inc(1)
            merge_telemetry(parent, export_telemetry(worker))
        assert parent.registry.get("unit.ops").value == 2 ** 53 + 10

    def test_float_amounts_still_supported(self):
        worker = metered_session()
        worker.registry.counter("unit.bytes").inc(0.5)
        worker.registry.counter("unit.bytes").inc(2)
        parent = metered_session()
        merge_telemetry(parent, export_telemetry(worker))
        assert parent.registry.get("unit.bytes").value == 2.5


class TestMergeAll:
    def test_matches_sequential_merge_telemetry(self):
        def build(values):
            exports = []
            for value in values:
                worker = metered_session()
                worker.registry.counter("unit.n").inc(1)
                worker.registry.gauge("unit.v").set(value)
                exports.append(export_telemetry(worker))
            return exports

        one = metered_session()
        merge_all(one, build([1.0, 2.0]))
        two = metered_session()
        for export in build([1.0, 2.0]):
            merge_telemetry(two, export)
        assert one.registry.get("unit.n").value \
            == two.registry.get("unit.n").value == 2
        assert one.registry.get("unit.v").value \
            == two.registry.get("unit.v").value == 2.0

    def test_none_exports_are_skipped(self):
        parent = metered_session()
        merge_all(parent, [None, None])
        assert len(parent.registry) == 0

    def test_traced_session_events_replay_in_order(self):
        spec = TelemetrySpec(traced=True, metered=False)
        exports = []
        for offset in (100.0, 200.0):
            worker = fresh_telemetry(spec)
            worker.tracer.complete("cxl.port", "m2s", offset, 8.0)
            exports.append(export_telemetry(worker))
        parent = Telemetry.on()
        merge_all(parent, exports)
        assert [event.ts_ns for event in parent.tracer.events] \
            == [100.0, 200.0]
