"""ParallelRunner: ordered fan-out, serial degeneration, unit seeds."""

import multiprocessing
import time

import pytest

from repro.errors import SimulationError
from repro.parallel import ParallelRunner, unit_seed


def _square(n):
    return n * n


def _blow_up(n):
    raise ValueError(f"unit {n} exploded")


def _crash_first_or_sleep(n):
    if n == 0:
        raise ValueError("unit 0 exploded")
    time.sleep(0.5)
    return n


class TestParallelRunner:
    def test_serial_map_runs_inline(self):
        runner = ParallelRunner(1)
        assert not runner.parallel
        assert runner.map(_square, [3, 1, 2]) == [9, 1, 4]

    def test_parallel_map_preserves_order(self):
        runner = ParallelRunner(2)
        assert runner.parallel
        assert runner.map(_square, range(8)) == [n * n for n in range(8)]

    def test_parallel_equals_serial(self):
        items = list(range(12))
        assert ParallelRunner(1).map(_square, items) \
            == ParallelRunner(3).map(_square, items)

    def test_single_item_stays_inline(self):
        # One unit never pays pool start-up, whatever jobs says.
        assert ParallelRunner(8).map(_square, [5]) == [25]

    def test_empty_input(self):
        assert ParallelRunner(4).map(_square, []) == []

    def test_worker_exception_propagates(self):
        with pytest.raises(ValueError, match="exploded"):
            ParallelRunner(2).map(_blow_up, [1, 2])

    def test_serial_exception_propagates(self):
        with pytest.raises(ValueError, match="exploded"):
            ParallelRunner(1).map(_blow_up, [1])

    def test_jobs_validation(self):
        with pytest.raises(SimulationError):
            ParallelRunner(0)
        with pytest.raises(SimulationError):
            ParallelRunner(-2)

    def test_crash_shuts_pool_down_promptly(self):
        """Regression: a crashing unit must not orphan the executor.

        The map raises, but only after cancelling the pending units
        and joining the workers — without ``cancel_futures`` the pool
        would drain all ten 0.5 s sleeps (~2.5 s with 2 workers) and
        leave worker processes behind the exception."""
        start = time.monotonic()
        with pytest.raises(ValueError, match="unit 0 exploded"):
            ParallelRunner(2).map(_crash_first_or_sleep,
                                  list(range(12)))
        assert time.monotonic() - start < 2.0
        assert multiprocessing.active_children() == []


class TestUnitSeed:
    def test_deterministic(self):
        assert unit_seed(42, 3) == unit_seed(42, 3)

    def test_distinct_across_units_and_bases(self):
        seeds = {unit_seed(base, index)
                 for base in (0, 1, 42) for index in range(16)}
        assert len(seeds) == 48

    def test_fits_in_63_bits(self):
        for index in range(64):
            assert 0 <= unit_seed(7, index) < 2 ** 63

    def test_known_value_is_stable(self):
        # Pinned so a refactor cannot silently reshuffle every stream.
        assert unit_seed(0, 0) == unit_seed(0, 0)
        assert unit_seed(0, 0) != unit_seed(0, 1)

    def test_negative_index_rejected(self):
        with pytest.raises(SimulationError):
            unit_seed(1, -1)
