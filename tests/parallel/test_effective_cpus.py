"""``effective_cpu_count`` and the ``--jobs`` oversubscription warning.

Containers routinely report the machine's core count while pinning the
process to fewer; ``--jobs`` above the usable count makes the suite
*slower* (BENCH history: suite speedup 0.835 at ``--jobs 4`` on one
CPU), so both CLIs warn up front.
"""

import pytest

from repro.errors import SimulationError
from repro.parallel import effective_cpu_count


class TestEffectiveCpuCount:
    def test_positive_without_override(self, monkeypatch):
        monkeypatch.delenv("REPRO_EFFECTIVE_CPUS", raising=False)
        assert effective_cpu_count() >= 1

    def test_env_override_wins(self, monkeypatch):
        monkeypatch.setenv("REPRO_EFFECTIVE_CPUS", "3")
        assert effective_cpu_count() == 3

    @pytest.mark.parametrize("bad", ["zero", "0", "-2", "1.5"])
    def test_bad_override_rejected(self, monkeypatch, bad):
        monkeypatch.setenv("REPRO_EFFECTIVE_CPUS", bad)
        with pytest.raises(SimulationError):
            effective_cpu_count()


class TestExperimentsCliWarning:
    def _run(self, monkeypatch, capsys, jobs):
        from repro.experiments.runner import main

        monkeypatch.setenv("REPRO_EFFECTIVE_CPUS", "1")
        code = main(["fig3", "--jobs", str(jobs), "--no-cache",
                     "--no-ledger", "--no-checkpoint",
                     "--no-progress"])
        assert code == 0
        return capsys.readouterr().err

    def test_oversubscribed_jobs_warns(self, monkeypatch, capsys):
        err = self._run(monkeypatch, capsys, jobs=2)
        assert "jobs-oversubscribed" in err

    def test_fitting_jobs_stays_quiet(self, monkeypatch, capsys):
        err = self._run(monkeypatch, capsys, jobs=1)
        assert "jobs-oversubscribed" not in err


class TestMemoCliWarning:
    def test_oversubscribed_jobs_warns(self, monkeypatch, capsys):
        from repro.memo.cli import main

        monkeypatch.setenv("REPRO_EFFECTIVE_CPUS", "1")
        assert main(["bw", "--threads", "1", "--jobs", "2",
                     "--no-ledger"]) == 0
        err = capsys.readouterr().err
        assert "jobs-oversubscribed" in err
        assert "expect a slowdown" in err


class TestProgressNote:
    def test_note_lands_as_warn_event_off_tty(self, capsys):
        from repro.obs import ProgressReporter

        reporter = ProgressReporter(total=1, tty=False)
        reporter.note("note: something advisory")
        assert "something advisory" in capsys.readouterr().err

    def test_note_replaces_status_line_on_tty(self):
        import io

        from repro.obs import ProgressReporter

        stream = io.StringIO()
        reporter = ProgressReporter(total=2, stream=stream, tty=True)
        reporter.unit_started("unit-a")
        reporter.note("note: heads up")
        text = stream.getvalue()
        assert "note: heads up\n" in text
        # The status line was erased before the note printed.
        assert reporter._line_width == 0
