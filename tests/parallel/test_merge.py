"""Worker-telemetry export/merge: merged sessions match serial ones."""

import pytest

from repro.errors import TelemetryError
from repro.parallel import (
    TelemetrySpec,
    export_telemetry,
    fresh_telemetry,
    merge_telemetry,
    telemetry_spec,
)
from repro.telemetry import NULL_TELEMETRY, NullRegistry, Telemetry


def _record_unit(telemetry, offset_ns):
    """A miniature workload recorded into ``telemetry``."""
    tracer = telemetry.tracer
    tracer.complete("cxl.port", "m2s", offset_ns, 8.0, thread=1)
    tracer.instant("cxl.device.wbuf", "stall", offset_ns + 2.0)
    tracer.count("cxl.device.wbuf", "occupancy", offset_ns + 3.0, 5.0)
    registry = telemetry.registry
    registry.counter("unit.completed").inc(3)
    registry.gauge("unit.last_ns").set(offset_ns)
    registry.histogram("unit.latency_ns").record(offset_ns + 1.0)


class TestSpec:
    def test_spec_of_full_session(self):
        spec = telemetry_spec(Telemetry.on(process_name="memo-bw"))
        assert spec == TelemetrySpec(traced=True, metered=True,
                                     process_name="memo-bw")

    def test_spec_of_null_session(self):
        spec = telemetry_spec(NULL_TELEMETRY)
        assert not spec.traced and not spec.metered
        assert fresh_telemetry(spec) is NULL_TELEMETRY

    def test_fresh_metered_only(self):
        spec = TelemetrySpec(traced=False, metered=True)
        telemetry = fresh_telemetry(spec)
        assert not telemetry.tracer.enabled
        assert not isinstance(telemetry.registry, NullRegistry)


class TestExport:
    def test_null_session_exports_none(self):
        assert export_telemetry(NULL_TELEMETRY) is None

    def test_empty_enabled_session_exports_track_list(self):
        export = export_telemetry(Telemetry.on())
        assert export == {"tracks": [], "events": []}

    def test_export_is_plain_data(self):
        telemetry = Telemetry.on()
        _record_unit(telemetry, 100.0)
        export = export_telemetry(telemetry)
        import json

        json.dumps(export)      # JSON-compatible, hence picklable
        assert export["tracks"] == ["cxl.port", "cxl.device.wbuf"]
        assert len(export["events"]) == 3
        assert export["metrics"]["unit.completed"]["value"] == 3


class TestMergeEqualsSerial:
    def test_two_units_merge_to_serial_session(self):
        serial = Telemetry.on()
        _record_unit(serial, 100.0)
        _record_unit(serial, 200.0)

        parent = Telemetry.on()
        spec = telemetry_spec(parent)
        for offset in (100.0, 200.0):
            worker = fresh_telemetry(spec)
            _record_unit(worker, offset)
            merge_telemetry(parent, export_telemetry(worker))

        assert [e.key() for e in parent.tracer.events] \
            == [e.key() for e in serial.tracer.events]
        assert parent.tracer.tracks == serial.tracer.tracks
        assert parent.registry.snapshot() == serial.registry.snapshot()

    def test_gauge_last_unit_wins(self):
        parent = Telemetry.on()
        spec = telemetry_spec(parent)
        for offset in (10.0, 30.0, 20.0):
            worker = fresh_telemetry(spec)
            worker.registry.gauge("g").set(offset)
            merge_telemetry(parent, export_telemetry(worker))
        assert parent.registry.gauge("g").value == 20.0

    def test_merge_none_is_noop(self):
        parent = Telemetry.on()
        merge_telemetry(parent, None)
        assert len(parent.tracer) == 0

    def test_histogram_buckets_survive(self):
        parent = Telemetry.on()
        worker = fresh_telemetry(telemetry_spec(parent))
        worker.registry.histogram("h", buckets=(1.0, 2.0)).record(1.5)
        merge_telemetry(parent, export_telemetry(worker))
        histogram = parent.registry.get("h")
        assert histogram.buckets == (1.0, 2.0)
        assert histogram.samples == [1.5]

    def test_unknown_metric_type_rejected(self):
        with pytest.raises(TelemetryError):
            merge_telemetry(Telemetry.on(),
                            {"metrics": {"m": {"type": "exotic"}}})

    def test_unknown_phase_rejected(self):
        with pytest.raises(TelemetryError):
            merge_telemetry(
                Telemetry.on(),
                {"tracks": ["t"],
                 "events": [("t", "e", "Z", 0.0, 0.0, {})]})
