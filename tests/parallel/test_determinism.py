"""Parallel and cached runs are indistinguishable from serial ones."""

import json

import pytest

from repro import build_system, combined_testbed
from repro.apps.dsb import DsbRunner
from repro.apps.kvstore import RedisYcsbStudy
from repro.cxl.e2e_sim import CxlEndToEndSim, CxlWriteEndToEndSim
from repro.experiments import REGISTRY, get
from repro.experiments.registry import ExperimentResult
from repro.experiments.runner import main
from repro.parallel import ResultCache, result_key
from repro.telemetry import Telemetry
from repro.workloads import WORKLOADS

THREADS = [1, 2, 4]
LINES = 200


class TestSweepDeterminism:
    def test_read_sweep_parallel_equals_serial(self):
        serial = CxlEndToEndSim().sweep(THREADS, lines_per_thread=LINES)
        parallel = CxlEndToEndSim().sweep(THREADS,
                                          lines_per_thread=LINES,
                                          jobs=2)
        assert parallel == serial        # E2eResult is a frozen dataclass

    def test_write_sweep_parallel_equals_serial(self):
        serial = CxlWriteEndToEndSim().sweep(THREADS,
                                             lines_per_thread=LINES)
        parallel = CxlWriteEndToEndSim().sweep(THREADS,
                                               lines_per_thread=LINES,
                                               jobs=2)
        assert parallel == serial

    def test_sweep_telemetry_merges_to_serial_session(self):
        serial = Telemetry.on()
        CxlEndToEndSim(telemetry=serial).sweep(THREADS,
                                               lines_per_thread=LINES)
        merged = Telemetry.on()
        CxlEndToEndSim(telemetry=merged).sweep(THREADS,
                                               lines_per_thread=LINES,
                                               jobs=2)
        assert [e.key() for e in merged.tracer.events] \
            == [e.key() for e in serial.tracer.events]
        assert merged.tracer.tracks == serial.tracer.tracks
        assert merged.registry.snapshot() == serial.registry.snapshot()


class TestCurveSharding:
    """Fig 6/10 p99 curves shard per point — same series either way."""

    @pytest.fixture(scope="class")
    def system(self):
        return build_system(combined_testbed())

    def test_kv_p99_curve_parallel_equals_serial(self, system):
        study = RedisYcsbStudy(system, num_keys=5_000)
        qps = [10_000.0, 30_000.0, 50_000.0]
        serial = study.p99_curve(WORKLOADS["A"], 0.5, qps, requests=400)
        parallel = study.p99_curve(WORKLOADS["A"], 0.5, qps,
                                   requests=400, jobs=2)
        assert parallel == serial        # Series is a dataclass

    def test_dsb_p99_curve_parallel_equals_serial(self, system):
        qps = [200.0, 600.0]
        serial = DsbRunner(system, database_node=system.LOCAL_NODE) \
            .p99_curve(qps, requests=300)
        parallel = DsbRunner(system, database_node=system.LOCAL_NODE) \
            .p99_curve(qps, requests=300, jobs=2)
        assert parallel == serial

    def test_dsb_curve_telemetry_merges_to_serial_session(self, system):
        qps = [200.0, 600.0]
        serial = Telemetry.on()
        DsbRunner(system, database_node=system.LOCAL_NODE,
                  telemetry=serial).p99_curve(qps, requests=300)
        merged = Telemetry.on()
        DsbRunner(system, database_node=system.LOCAL_NODE,
                  telemetry=merged).p99_curve(qps, requests=300, jobs=2)
        assert [e.key() for e in merged.tracer.events] \
            == [e.key() for e in serial.tracer.events]
        assert merged.registry.snapshot() == serial.registry.snapshot()

    def test_kv_p99_curves_flat_shard_equals_serial(self, system):
        # The fig6 whole-figure sweep: every (fraction, qps) pair is
        # its own worker unit, reassembled fraction-major.
        study = RedisYcsbStudy(system, num_keys=5_000)
        qps = [10_000.0, 30_000.0]
        fractions = [0.0, 0.5, 1.0]
        serial = study.p99_curves(WORKLOADS["A"], fractions, qps,
                                  requests=400)
        parallel = study.p99_curves(WORKLOADS["A"], fractions, qps,
                                    requests=400, jobs=2)
        assert parallel == serial

    def test_dsb_p99_curves_flat_shard_equals_serial(self, system):
        # The fig10 whole-figure sweep: (runner, request-type) combos
        # crossed with QPS points, one unit each.
        from repro.apps.dsb import RequestType
        from repro.apps.dsb.runner import p99_curves

        dram = DsbRunner(system, database_node=system.LOCAL_NODE)
        cxl = DsbRunner(system, database_node=system.cxl_node_id)
        combos = [(runner, request_type)
                  for request_type in (RequestType.COMPOSE_POST, None)
                  for runner in (dram, cxl)]
        qps = [200.0, 600.0]
        serial = p99_curves(combos, qps, requests=300)
        parallel = p99_curves(combos, qps, requests=300, jobs=2)
        assert parallel == serial

    def test_only_des_heavy_experiments_shard_internally(self):
        assert REGISTRY["fig6"].accepts_jobs
        assert REGISTRY["fig10"].accepts_jobs
        assert not REGISTRY["fig3"].accepts_jobs
        assert not REGISTRY["table1"].accepts_jobs

    def test_experiment_run_ignores_jobs_when_unsupported(self):
        serial = get("fig3").run(fast=True)
        sharded = get("fig3").run(fast=True, jobs=4)
        assert sharded.render() == serial.render()


@pytest.fixture
def isolated_cache(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
    return tmp_path


class TestRunnerCliDeterminism:
    IDS = ["fig3", "fig5"]

    def _save_run(self, tmp_path, name, extra):
        out = tmp_path / name
        assert main([*self.IDS, "--save", str(out), *extra]) == 0
        return {path.name: path.read_bytes()
                for path in sorted(out.iterdir())}

    def test_jobs_save_matches_serial_save(self, isolated_cache, capsys):
        serial = self._save_run(isolated_cache, "serial", ["--no-cache"])
        parallel = self._save_run(isolated_cache, "parallel",
                                  ["--no-cache", "--jobs", "2"])
        assert parallel == serial
        capsys.readouterr()

    def test_cached_rerun_matches_first_run(self, isolated_cache,
                                            capsys):
        first = self._save_run(isolated_cache, "first", [])
        out1 = capsys.readouterr().out
        cached = self._save_run(isolated_cache, "second", [])
        out2 = capsys.readouterr().out
        assert cached == first
        assert out2 == out1


class TestCacheHitExactness:
    def test_cache_hit_returns_exact_object(self, tmp_path):
        result = get("fig3").run(fast=True)
        cache = ResultCache(tmp_path)
        key = result_key("fig3", {"fast": True})
        cache.put(key, result.payload())

        restored = ExperimentResult.from_payload(cache.get(key))
        assert restored.experiment_id == result.experiment_id
        assert restored.title == result.title
        assert restored.rendered == result.rendered
        assert restored.checks == result.checks
        assert restored.series == result.series
        assert restored.render() == result.render()
        assert json.dumps(restored.to_dict(), sort_keys=True) \
            == json.dumps(result.to_dict(), sort_keys=True)

    def test_payload_roundtrip_without_disk(self):
        result = get("table1").run(fast=True)
        clone = ExperimentResult.from_payload(
            json.loads(json.dumps(result.payload())))
        assert clone.render() == result.render()
        assert clone.passed == result.passed
