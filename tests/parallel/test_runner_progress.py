"""ParallelRunner progress callback: events fire, results untouched."""

import pytest

from repro.parallel import ParallelRunner


def _square(n):
    return n * n


def _blow_up(n):
    raise ValueError(f"unit {n} exploded")


class Recorder:
    def __init__(self):
        self.events = []

    def __call__(self, event, index, total, wall_s=None, name=None):
        self.events.append((event, index, total, wall_s, name))

    def of(self, kind):
        return [e for e in self.events if e[0] == kind]

    def names(self, kind):
        return [e[4] for e in self.of(kind)]


class TestSerialProgress:
    def test_started_and_finished_per_unit_in_order(self):
        recorder = Recorder()
        runner = ParallelRunner(1, progress=recorder)
        assert runner.map(_square, [3, 1]) == [9, 1]
        assert [e[:3] for e in recorder.events] == [
            ("started", 0, 2), ("finished", 0, 2),
            ("started", 1, 2), ("finished", 1, 2)]
        for event in recorder.of("finished"):
            assert event[3] is not None and event[3] >= 0

    def test_exception_stops_after_started(self):
        recorder = Recorder()
        with pytest.raises(ValueError):
            ParallelRunner(1, progress=recorder).map(_blow_up, [1])
        assert recorder.of("started") and not recorder.of("finished")

    def test_default_names_are_indexed_units(self):
        recorder = Recorder()
        ParallelRunner(1, progress=recorder).map(_square, [3, 1])
        assert recorder.names("finished") == ["unit-0", "unit-1"]

    def test_caller_names_label_every_event(self):
        recorder = Recorder()
        runner = ParallelRunner(
            1, progress=recorder,
            names=["figC[qps=50k,skew=0.99]", "figC[qps=100k,skew=0.99]"])
        runner.map(_square, [3, 1])
        assert recorder.names("started") \
            == ["figC[qps=50k,skew=0.99]", "figC[qps=100k,skew=0.99]"]
        assert runner.unit_name(0) == "figC[qps=50k,skew=0.99]"
        assert runner.unit_name(7) == "unit-7"


class TestParallelProgress:
    def test_every_unit_reports_finished(self):
        recorder = Recorder()
        runner = ParallelRunner(2, progress=recorder)
        assert runner.map(_square, range(6)) == [n * n for n in range(6)]
        assert sorted(e[1] for e in recorder.of("started")) \
            == list(range(6))
        # finished fires in completion order — indices are a set, not
        # a sequence, but every unit must appear exactly once.
        assert sorted(e[1] for e in recorder.of("finished")) \
            == list(range(6))
        for event in recorder.of("finished"):
            assert event[3] is not None and event[3] >= 0

    def test_results_identical_with_and_without_progress(self):
        items = list(range(8))
        assert ParallelRunner(3, progress=Recorder()).map(_square, items) \
            == ParallelRunner(3).map(_square, items)

    def test_exception_still_propagates_with_progress(self):
        with pytest.raises(ValueError, match="exploded"):
            ParallelRunner(2, progress=Recorder()).map(_blow_up, [1, 2])

    def test_no_callback_is_the_default(self):
        assert ParallelRunner(2).progress is None
        assert ParallelRunner(2).map(_square, [2, 3]) == [4, 9]
