"""The content-addressed result cache: keys, round-trips, invalidation."""

import json
from pathlib import Path

import pytest

from repro.errors import ExperimentError
from repro.parallel import (
    ResultCache,
    package_fingerprint,
    payload_checksum,
    result_key,
)


@pytest.fixture
def cache(tmp_path):
    return ResultCache(tmp_path / "cache")


class TestKeys:
    def test_stable_across_calls(self):
        assert result_key("fig3", {"fast": True}) \
            == result_key("fig3", {"fast": True})

    def test_insensitive_to_config_dict_order(self):
        assert result_key("x", {"a": 1, "b": 2}, version="v") \
            == result_key("x", {"b": 2, "a": 1}, version="v")

    def test_changes_with_experiment_id(self):
        assert result_key("fig3", {"fast": True}) \
            != result_key("fig5", {"fast": True})

    def test_changes_with_config(self):
        assert result_key("fig3", {"fast": True}) \
            != result_key("fig3", {"fast": False})

    def test_changes_with_version(self):
        assert result_key("fig3", {}, version="1.0.0") \
            != result_key("fig3", {}, version="1.0.1")

    def test_empty_id_rejected(self):
        with pytest.raises(ExperimentError):
            result_key("", {})

    def test_changes_with_fault_plan(self):
        """A degraded-mode run must never be served a healthy cached
        result (or vice versa): the fault plan is key material."""
        from repro.faults import FaultPlan

        plan = FaultPlan(crc_rate=0.01, seed=2)
        healthy = result_key("degraded-cxl", {"fast": True})
        faulty = result_key("degraded-cxl",
                            {"fast": True, "faults": plan.to_dict()})
        assert healthy != faulty

    def test_changes_between_fault_plans(self):
        from repro.faults import FaultPlan

        one = FaultPlan(crc_rate=0.01, seed=2)
        two = FaultPlan(crc_rate=0.02, seed=2)
        reseeded = FaultPlan(crc_rate=0.01, seed=3)
        keys = {result_key("degraded-cxl",
                           {"fast": True, "faults": plan.to_dict()})
                for plan in (one, two, reseeded)}
        assert len(keys) == 3

    def test_fingerprint_includes_version_and_source_digest(self):
        import repro

        fingerprint = package_fingerprint()
        assert fingerprint.startswith(repro.__version__ + "+src.")
        assert fingerprint == package_fingerprint()  # cached, stable


class TestStore:
    def test_miss_returns_none(self, cache):
        assert cache.get(result_key("nope", {})) is None

    def test_put_get_roundtrip(self, cache):
        key = result_key("fig3", {"fast": True}, version="v")
        payload = {"rendered": "### fig3", "series": {"a": [1.0, 2.5]}}
        cache.put(key, payload)
        assert key in cache
        assert cache.get(key) == payload

    def test_roundtrip_preserves_float_bits(self, cache):
        value = 16.837162615276434
        key = result_key("x", {}, version="v")
        cache.put(key, {"y": value})
        assert cache.get(key)["y"] == value

    def test_corrupt_entry_reads_as_miss_and_is_removed(self, cache):
        key = result_key("x", {}, version="v")
        cache.put(key, {"ok": 1})
        cache.path(key).write_text("{not json")
        assert cache.get(key) is None
        assert key not in cache

    def test_entries_carry_payload_checksum(self, cache):
        key = result_key("x", {}, version="v")
        payload = {"value": 1.5}
        cache.put(key, payload)
        entry = json.loads(cache.path(key).read_text())
        assert entry["sha256"] == payload_checksum(payload)

    def test_clear(self, cache):
        for name in ("a", "b"):
            cache.put(result_key(name, {}, version="v"), {"n": name})
        assert len(cache) == 2
        assert cache.clear() == 2
        assert len(cache) == 0

    def test_clear_missing_dir_is_noop(self, tmp_path):
        assert ResultCache(tmp_path / "never-created").clear() == 0

    def test_entry_records_key_material(self, cache):
        key = result_key("fig3", {"fast": True}, version="v")
        cache.put(key, {"x": 1},
                  key_material={"experiment": "fig3",
                                "config": {"fast": True}})
        entry = json.loads(cache.path(key).read_text())
        assert entry["key"] == key
        assert entry["key_material"]["experiment"] == "fig3"

    def test_env_var_overrides_root(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "env-cache"))
        cache = ResultCache()
        assert cache.root == tmp_path / "env-cache"


class TestQuarantine:
    """Corrupt entries are moved aside and recomputed, never trusted."""

    def quarantining_cache(self, tmp_path):
        events = []
        cache = ResultCache(
            tmp_path / "cache",
            on_quarantine=lambda *args: events.append(args))
        return cache, events

    def test_truncated_entry_quarantined_as_unreadable(self, tmp_path):
        cache, events = self.quarantining_cache(tmp_path)
        key = result_key("x", {}, version="v")
        cache.put(key, {"ok": 1})
        path = cache.path(key)
        corrupt = path.read_text()[:20]
        path.write_text(corrupt)
        assert cache.get(key) is None
        assert key not in cache
        ((event_key, quarantine_path, reason),) = events
        assert event_key == key and reason == "unreadable"
        # Preserved byte-for-byte for post-mortem, not deleted.
        assert Path(quarantine_path).read_text() == corrupt
        assert Path(quarantine_path).parent == cache.quarantine_dir

    def test_bit_flipped_payload_fails_checksum(self, tmp_path):
        cache, events = self.quarantining_cache(tmp_path)
        key = result_key("x", {}, version="v")
        cache.put(key, {"value": 1})
        entry = json.loads(cache.path(key).read_text())
        entry["payload"]["value"] = 2       # flip without re-checksum
        cache.path(key).write_text(json.dumps(entry))
        assert cache.get(key) is None
        assert events[0][2] == "checksum-mismatch"

    def test_missing_checksum_quarantined(self, tmp_path):
        cache, events = self.quarantining_cache(tmp_path)
        key = result_key("x", {}, version="v")
        cache.put(key, {"value": 1})
        entry = json.loads(cache.path(key).read_text())
        del entry["sha256"]
        cache.path(key).write_text(json.dumps(entry))
        assert cache.get(key) is None
        assert events[0][2] == "missing-checksum"

    def test_recompute_after_quarantine_round_trips(self, tmp_path):
        cache, events = self.quarantining_cache(tmp_path)
        key = result_key("x", {}, version="v")
        cache.put(key, {"value": 1})
        cache.path(key).write_text("garbage")
        assert cache.get(key) is None
        cache.put(key, {"value": 1})
        assert cache.get(key) == {"value": 1}
        assert len(events) == 1

    def test_quarantine_without_callback_is_silent(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        key = result_key("x", {}, version="v")
        cache.put(key, {"value": 1})
        cache.path(key).write_text("garbage")
        assert cache.get(key) is None       # no callback, no crash

    def test_repeated_quarantine_keeps_both_copies(self, tmp_path):
        cache, events = self.quarantining_cache(tmp_path)
        key = result_key("x", {}, version="v")
        for _ in range(2):
            cache.put(key, {"value": 1})
            cache.path(key).write_text("garbage")
            assert cache.get(key) is None
        assert len(events) == 2
        assert len(list(cache.quarantine_dir.iterdir())) == 2

    def test_quarantined_entries_not_counted_or_cleared(self, tmp_path):
        cache, _ = self.quarantining_cache(tmp_path)
        key = result_key("x", {}, version="v")
        cache.put(key, {"value": 1})
        cache.path(key).write_text("garbage")
        assert cache.get(key) is None
        assert len(cache) == 0
        assert cache.clear() == 0
        assert len(list(cache.quarantine_dir.iterdir())) == 1


class TestFaultAwareCliCaching:
    """End-to-end: the runner's cache keys cover the --faults flag."""

    def _entries(self, root):
        return len(list(root.glob("*.json")))

    def test_changed_fault_config_is_a_cache_miss(self, tmp_path,
                                                  monkeypatch, capsys):
        from repro.experiments.runner import main

        root = tmp_path / "cache"
        monkeypatch.setenv("REPRO_CACHE_DIR", str(root))
        assert main(["degraded-cxl"]) == 0            # healthy baseline
        baseline = self._entries(root)
        assert main(["degraded-cxl", "--faults",
                     "crc=0.03,seed=5"]) == 0         # miss: new plan
        assert self._entries(root) == baseline + 1
        assert main(["degraded-cxl", "--faults",
                     "crc=0.03,seed=5"]) == 0         # hit: same plan
        assert self._entries(root) == baseline + 1
        assert main(["degraded-cxl", "--faults",
                     "crc=0.03,seed=6"]) == 0         # miss: new seed
        assert self._entries(root) == baseline + 2
        assert main(["degraded-cxl"]) == 0            # hit: healthy key
        assert self._entries(root) == baseline + 2
        capsys.readouterr()
