"""Property-based invariants of the performance models."""

import pytest
from hypothesis import given, settings, strategies as st

from repro import build_system, combined_testbed
from repro.cpu import AccessKind, MemoryScheme
from repro.mem import AccessPattern
from repro.perfmodel import LatencyModel, ThroughputModel

SCHEMES = [MemoryScheme.DDR5_L8, MemoryScheme.DDR5_R1, MemoryScheme.CXL]
KINDS = [AccessKind.LOAD, AccessKind.STORE, AccessKind.NT_STORE]


@pytest.fixture(scope="module")
def system():
    return build_system(combined_testbed())


@pytest.fixture(scope="module")
def throughput(system):
    return ThroughputModel(system)


@pytest.fixture(scope="module")
def latency(system):
    return LatencyModel(system)


class TestThroughputInvariants:
    @settings(max_examples=40, deadline=None)
    @given(scheme=st.sampled_from(SCHEMES), kind=st.sampled_from(KINDS),
           threads=st.integers(min_value=1, max_value=40),
           block_exp=st.integers(min_value=6, max_value=17))
    def test_result_is_self_consistent(self, throughput, scheme, kind,
                                       threads, block_exp):
        result = throughput.bandwidth(scheme, kind,
                                      AccessPattern.RANDOM_BLOCK,
                                      threads=threads,
                                      block_bytes=1 << block_exp)
        assert result.app_bandwidth > 0
        assert result.bus_bandwidth == pytest.approx(
            result.app_bandwidth * kind.traffic_factor)
        assert 0.0 <= result.utilization <= 1.0 + 1e-9
        assert result.loaded_read_ns > 0

    @settings(max_examples=20, deadline=None)
    @given(scheme=st.sampled_from(SCHEMES), kind=st.sampled_from(KINDS))
    def test_bandwidth_below_physical_peak(self, throughput, scheme,
                                           kind):
        """No configuration may exceed the scheme's theoretical DRAM peak."""
        system = throughput.system
        peak = system.scheme_backend(scheme).controller.config \
            .peak_bandwidth
        result = throughput.bandwidth(scheme, kind, threads=32)
        assert result.bus_bandwidth <= peak * (1 + 1e-9)

    @settings(max_examples=15, deadline=None)
    @given(kind=st.sampled_from(KINDS),
           threads=st.integers(min_value=1, max_value=39))
    def test_l8_never_decreases_with_threads(self, throughput, kind,
                                             threads):
        """Plain DRAM has no concurrency pathology: adding a thread never
        loses bandwidth."""
        fewer = throughput.bandwidth(MemoryScheme.DDR5_L8, kind,
                                     threads=threads)
        more = throughput.bandwidth(MemoryScheme.DDR5_L8, kind,
                                    threads=threads + 1)
        assert more.app_bandwidth >= fewer.app_bandwidth * (1 - 1e-9)

    @settings(max_examples=15, deadline=None)
    @given(threads=st.integers(min_value=1, max_value=32),
           block_exp=st.integers(min_value=6, max_value=16))
    def test_random_never_beats_sequential(self, throughput, threads,
                                           block_exp):
        for scheme in SCHEMES:
            random_bw = throughput.bandwidth(
                scheme, AccessKind.LOAD, AccessPattern.RANDOM_BLOCK,
                threads=threads, block_bytes=1 << block_exp)
            seq_bw = throughput.bandwidth(scheme, AccessKind.LOAD,
                                          threads=threads)
            assert random_bw.app_bandwidth <= \
                seq_bw.app_bandwidth * (1 + 1e-9)

    @settings(max_examples=15, deadline=None)
    @given(threads=st.integers(min_value=1, max_value=32))
    def test_copy_routes_bounded_by_d2d(self, throughput, threads):
        """No copy route can beat same-kind D2D at equal threads."""
        d2d = throughput.copy_bandwidth(MemoryScheme.DDR5_L8,
                                        MemoryScheme.DDR5_L8,
                                        threads=threads)
        for src in SCHEMES:
            for dst in (MemoryScheme.DDR5_L8, MemoryScheme.CXL):
                route = throughput.copy_bandwidth(src, dst,
                                                  threads=threads)
                assert route.app_bandwidth <= \
                    d2d.app_bandwidth * (1 + 1e-9)


class TestLatencyInvariants:
    def test_scheme_ordering_holds_for_every_probe(self, latency):
        probes = [latency.flushed_load_ns,
                  latency.flushed_store_writeback_ns,
                  latency.nt_store_ns, latency.pointer_chase_ns,
                  latency.read_path_ns, latency.write_path_ns]
        for probe in probes:
            values = [probe(scheme) for scheme in SCHEMES]
            assert values == sorted(values), probe.__name__

    @settings(max_examples=25, deadline=None)
    @given(wss_exp=st.integers(min_value=14, max_value=33))
    def test_wss_chase_bounded_by_extremes(self, latency, wss_exp):
        """Any WSS chase lies between the L1 hit time and the full-miss
        path."""
        for scheme in SCHEMES:
            value = latency.pointer_chase_ns(scheme, 1 << wss_exp)
            l1 = latency.system.socket.config.cache.l1.latency_ns
            full = latency.pointer_chase_ns(scheme) \
                + latency.system.socket.hierarchy_traversal_ns()
            assert l1 * 0.99 <= value <= full * 1.01

    @settings(max_examples=25, deadline=None)
    @given(wss_exp=st.integers(min_value=14, max_value=32))
    def test_cxl_chase_at_least_l8_chase(self, latency, wss_exp):
        wss = 1 << wss_exp
        assert latency.pointer_chase_ns(MemoryScheme.CXL, wss) >= \
            latency.pointer_chase_ns(MemoryScheme.DDR5_L8, wss) - 1e-9
