"""The throughput solver must reproduce the paper's §4.3 anchors."""

import pytest

from repro import build_system, combined_testbed, units
from repro.cpu import AccessKind, MemoryScheme
from repro.errors import ConfigError
from repro.mem import AccessPattern
from repro.perfmodel import ThroughputModel

L8, R1, CXL = MemoryScheme.DDR5_L8, MemoryScheme.DDR5_R1, MemoryScheme.CXL


@pytest.fixture(scope="module")
def model() -> ThroughputModel:
    return ThroughputModel(build_system(combined_testbed()))


class TestSequentialL8:
    def test_load_peak_221(self, model):
        """Fig 3a: 'peaked at the maximum bandwidth of 221 GB/s'."""
        result = model.bandwidth(L8, AccessKind.LOAD, threads=32)
        assert result.gb_per_s == pytest.approx(221.0, abs=3.0)

    def test_load_saturates_around_26_threads(self, model):
        """Fig 3a: '...with approximately 26 threads'."""
        almost = model.bandwidth(L8, AccessKind.LOAD, threads=20)
        peak = model.bandwidth(L8, AccessKind.LOAD, threads=28)
        assert almost.gb_per_s < 0.95 * peak.gb_per_s
        assert model.bandwidth(L8, AccessKind.LOAD, threads=30).gb_per_s == \
            pytest.approx(peak.gb_per_s, rel=0.02)

    def test_nt_store_peak_170_at_16_threads(self, model):
        """Fig 3a: nt-store max 170 GB/s around 16 threads."""
        result = model.bandwidth(L8, AccessKind.NT_STORE, threads=16)
        assert result.gb_per_s == pytest.approx(170.0, abs=4.0)
        more = model.bandwidth(L8, AccessKind.NT_STORE, threads=32)
        assert more.gb_per_s == pytest.approx(result.gb_per_s, rel=0.02)

    def test_nt_store_peak_below_load_peak(self, model):
        load = model.bandwidth(L8, AccessKind.LOAD, threads=32)
        ntst = model.bandwidth(L8, AccessKind.NT_STORE, threads=32)
        assert ntst.gb_per_s < load.gb_per_s

    def test_load_scales_linearly_at_low_threads(self, model):
        one = model.bandwidth(L8, AccessKind.LOAD, threads=1)
        eight = model.bandwidth(L8, AccessKind.LOAD, threads=8)
        assert eight.gb_per_s == pytest.approx(8 * one.gb_per_s, rel=0.05)


class TestSequentialCxl:
    def test_load_peaks_around_8_threads_near_21(self, model):
        """Fig 3b: load max with ~8 threads near the DDR4 line."""
        result = model.bandwidth(CXL, AccessKind.LOAD, threads=8)
        assert 18.0 <= result.gb_per_s <= 21.5

    def test_load_drops_to_16_8_past_12_threads(self, model):
        """Fig 3b: 'drops to 16.8 GB/s when we increase the thread count
        beyond 12 threads'."""
        result = model.bandwidth(CXL, AccessKind.LOAD, threads=16)
        assert result.gb_per_s == pytest.approx(16.8, abs=0.8)

    def test_nt_store_22_at_2_threads(self, model):
        """Fig 3b: 'maximum bandwidth of 22 GB/s with only 2 threads,
        close to the theoretical max' (21.3)."""
        result = model.bandwidth(CXL, AccessKind.NT_STORE, threads=2)
        assert result.gb_per_s == pytest.approx(21.0, abs=1.5)

    def test_nt_store_collapses_beyond_2_threads(self, model):
        """Fig 3b: 'this bandwidth drops immediately as we increase the
        thread count'."""
        two = model.bandwidth(CXL, AccessKind.NT_STORE, threads=2)
        eight = model.bandwidth(CXL, AccessKind.NT_STORE, threads=8)
        assert eight.gb_per_s < 0.6 * two.gb_per_s

    def test_temporal_store_significantly_below_nt(self, model):
        """Fig 3b / §4.3.1: RFO halves temporal-store transfer efficiency."""
        nt = model.bandwidth(CXL, AccessKind.NT_STORE, threads=2)
        st = model.bandwidth(CXL, AccessKind.STORE, threads=8)
        assert st.gb_per_s < 0.6 * nt.gb_per_s

    def test_nt_store_ceiling_near_theoretical_ddr4(self, model):
        theoretical = units.to_gb_per_s(units.ddr_peak_bandwidth(2666, 1))
        result = model.bandwidth(CXL, AccessKind.NT_STORE, threads=2)
        assert result.gb_per_s <= theoretical
        assert result.gb_per_s >= 0.9 * theoretical


class TestSequentialR1:
    def test_r1_beats_cxl_on_loads(self, model):
        """Fig 3c: higher transfer rate + lower latency on UPI."""
        r1 = model.bandwidth(R1, AccessKind.LOAD, threads=8)
        cxl = model.bandwidth(CXL, AccessKind.LOAD, threads=8)
        assert r1.gb_per_s > cxl.gb_per_s

    def test_r1_nt_store_at_least_cxl(self, model):
        r1 = model.bandwidth(R1, AccessKind.NT_STORE, threads=2)
        cxl = model.bandwidth(CXL, AccessKind.NT_STORE, threads=2)
        assert r1.gb_per_s >= cxl.gb_per_s * 0.98

    def test_r1_temporal_store_similar_to_cxl(self, model):
        """Fig 3c: 'similar throughput in temporal stores'."""
        r1 = model.bandwidth(R1, AccessKind.STORE, threads=8)
        cxl = model.bandwidth(CXL, AccessKind.STORE, threads=8)
        assert r1.gb_per_s == pytest.approx(cxl.gb_per_s, rel=0.4)

    def test_r1_well_below_l8(self, model):
        r1 = model.bandwidth(R1, AccessKind.LOAD, threads=16)
        l8 = model.bandwidth(L8, AccessKind.LOAD, threads=16)
        assert r1.gb_per_s < 0.3 * l8.gb_per_s


class TestRandomBlocks:
    def test_small_blocks_hurt_all_schemes(self, model):
        """Fig 5: at 1 KiB all three suffer roughly equally (relative to
        their own sequential rate)."""
        for scheme in (L8, R1, CXL):
            random_bw = model.bandwidth(scheme, AccessKind.LOAD,
                                        AccessPattern.RANDOM_BLOCK,
                                        threads=4, block_bytes=1024)
            seq_bw = model.bandwidth(scheme, AccessKind.LOAD,
                                     threads=4)
            assert random_bw.gb_per_s <= seq_bw.gb_per_s

    def test_16k_blocks_separate_l8_from_single_channel(self, model):
        """Fig 5: at 16 KiB, L8 keeps scaling with threads while R1/CXL
        flatten after ~4 threads."""
        def gain(scheme):
            four = model.bandwidth(scheme, AccessKind.LOAD,
                                   AccessPattern.RANDOM_BLOCK,
                                   threads=4, block_bytes=16384)
            sixteen = model.bandwidth(scheme, AccessKind.LOAD,
                                      AccessPattern.RANDOM_BLOCK,
                                      threads=16, block_bytes=16384)
            return sixteen.gb_per_s / four.gb_per_s

        assert gain(L8) > 3.0
        assert gain(CXL) < 2.0
        assert gain(R1) < 2.0

    def test_cxl_nt_single_thread_scales_with_block(self, model):
        """Fig 5: 'Single-threaded nt-store scales nicely with block
        size'."""
        sizes = [1024, 4096, 16384, 65536]
        values = [model.bandwidth(CXL, AccessKind.NT_STORE,
                                  AccessPattern.RANDOM_BLOCK, threads=1,
                                  block_bytes=s).gb_per_s for s in sizes]
        assert values == sorted(values)

    def test_cxl_nt_2_threads_peak_at_32k(self, model):
        """Fig 5: 'the 2-thread bandwidth reaches its peak when the
        block size is 32KB'."""
        curve = {s: model.bandwidth(CXL, AccessKind.NT_STORE,
                                    AccessPattern.RANDOM_BLOCK, threads=2,
                                    block_bytes=s).gb_per_s
                 for s in (4096, 16384, 32768, 65536, 131072)}
        peak_block = max(curve, key=curve.get)
        assert peak_block in (16384, 32768)
        assert curve[131072] < curve[peak_block]

    def test_cxl_nt_4_threads_peak_at_16k(self, model):
        """Fig 5: 'the 4-thread bandwidth peaks at a block size of 16KB'."""
        curve = {s: model.bandwidth(CXL, AccessKind.NT_STORE,
                                    AccessPattern.RANDOM_BLOCK, threads=4,
                                    block_bytes=s).gb_per_s
                 for s in (4096, 8192, 16384, 32768, 65536)}
        peak_block = max(curve, key=curve.get)
        assert peak_block in (8192, 16384)


class TestMovdirCopies:
    def test_d2_star_similar(self, model):
        """Fig 4a: 'D2* operations exhibit similar behavior'."""
        d2d = model.copy_bandwidth(L8, L8, threads=4)
        d2c = model.copy_bandwidth(L8, CXL, threads=4)
        assert d2c.gb_per_s == pytest.approx(d2d.gb_per_s, rel=0.15)

    def test_c2_star_lower(self, model):
        """Fig 4a: 'C2* operations show lower throughput in general'."""
        d2d = model.copy_bandwidth(L8, L8, threads=4)
        c2d = model.copy_bandwidth(CXL, L8, threads=4)
        c2c = model.copy_bandwidth(CXL, CXL, threads=4)
        assert c2d.gb_per_s < 0.6 * d2d.gb_per_s
        assert c2c.gb_per_s <= c2d.gb_per_s

    def test_copy_scheme_labels(self, model):
        assert model.copy_bandwidth(L8, CXL).scheme == "D2C"
        assert model.copy_bandwidth(CXL, L8).scheme == "C2D"
        assert model.copy_bandwidth(CXL, CXL).scheme == "C2C"


class TestValidation:
    def test_zero_threads_rejected(self, model):
        with pytest.raises(ConfigError):
            model.bandwidth(L8, AccessKind.LOAD, threads=0)

    def test_too_many_threads_rejected(self, model):
        with pytest.raises(ConfigError):
            model.bandwidth(L8, AccessKind.LOAD, threads=1000)

    def test_movdir_requires_copy_api(self, model):
        with pytest.raises(ConfigError):
            model.bandwidth(L8, AccessKind.MOVDIR64B)

    def test_result_accessors(self, model):
        result = model.bandwidth(L8, AccessKind.LOAD, threads=4)
        assert result.per_thread_bandwidth == pytest.approx(
            result.app_bandwidth / 4)
        assert result.bus_bandwidth == pytest.approx(result.app_bandwidth)
        assert 0.0 <= result.utilization <= 1.0

    def test_sweep_helper(self, model):
        sweep = model.sweep_threads(L8, AccessKind.LOAD, [1, 2, 4])
        assert [r.threads for r in sweep] == [1, 2, 4]
        assert sweep[0].gb_per_s < sweep[-1].gb_per_s
