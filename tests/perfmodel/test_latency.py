"""The latency model must reproduce the paper's §4.2 ratios."""

import pytest

from repro import build_system, combined_testbed, units
from repro.cpu import AccessKind, MemoryScheme
from repro.errors import ConfigError
from repro.perfmodel import LatencyModel


@pytest.fixture(scope="module")
def model() -> LatencyModel:
    return LatencyModel(build_system(combined_testbed()))


class TestFlushedProbes:
    def test_cxl_load_about_2_2x_of_l8(self, model):
        """§4.2: 'CXL memory access latency is about 2.2x higher than
        the 8-channel local-socket-DDR5'."""
        ratio = (model.flushed_load_ns(MemoryScheme.CXL)
                 / model.flushed_load_ns(MemoryScheme.DDR5_L8))
        assert ratio == pytest.approx(2.2, abs=0.35)

    def test_r1_load_between_1x_and_2_5x_of_l8(self, model):
        ratio = (model.flushed_load_ns(MemoryScheme.DDR5_R1)
                 / model.flushed_load_ns(MemoryScheme.DDR5_L8))
        assert 1.0 < ratio < 2.5

    def test_ordering_l8_r1_cxl(self, model):
        for probe in (model.flushed_load_ns,
                      model.flushed_store_writeback_ns,
                      model.nt_store_ns):
            values = [probe(s) for s in (MemoryScheme.DDR5_L8,
                                         MemoryScheme.DDR5_R1,
                                         MemoryScheme.CXL)]
            assert values[0] < values[1] < values[2]

    def test_nt_store_notably_below_st_wb_on_cxl(self, model):
        """§4.2: nt-store+sfence has notably lower latency than st+clwb
        because of RFO."""
        nt = model.nt_store_ns(MemoryScheme.CXL)
        st = model.flushed_store_writeback_ns(MemoryScheme.CXL)
        assert st > 1.8 * nt

    def test_cxl_latencies_are_hundreds_of_ns(self, model):
        """§5.1: 'CXL memory access latency ranges from hundreds to one
        thousand nano-second'."""
        for probe in (model.flushed_load_ns,
                      model.flushed_store_writeback_ns,
                      model.nt_store_ns):
            value = probe(MemoryScheme.CXL)
            assert 200.0 <= value <= 1000.0

    def test_probe_dispatch(self, model):
        assert model.probe_ns(MemoryScheme.CXL, AccessKind.LOAD) == \
            model.flushed_load_ns(MemoryScheme.CXL)
        assert model.probe_ns(MemoryScheme.CXL, AccessKind.STORE) == \
            model.flushed_store_writeback_ns(MemoryScheme.CXL)
        with pytest.raises(ConfigError):
            model.probe_ns(MemoryScheme.CXL, AccessKind.MOVDIR64B)

    def test_flushed_load_exceeds_plain_read_path(self, model):
        """The flushed-line coherence handshake is visible (§4.2, [31])."""
        assert (model.flushed_load_ns(MemoryScheme.DDR5_L8)
                > model.read_path_ns(MemoryScheme.DDR5_L8))


class TestPointerChase:
    def test_cxl_chase_3_7x_of_l8(self, model):
        """§4.2: 'pointer chasing in CXL memory has 3.7x higher latency
        than that of DDR5-L8'."""
        ratio = (model.pointer_chase_ns(MemoryScheme.CXL)
                 / model.pointer_chase_ns(MemoryScheme.DDR5_L8))
        assert ratio == pytest.approx(3.7, abs=0.45)

    def test_cxl_chase_2_2x_of_r1(self, model):
        """§4.2: 'The pointer chasing latency on CXL memory is 2.2x
        higher than that of DDR5-R1 accesses'."""
        ratio = (model.pointer_chase_ns(MemoryScheme.CXL)
                 / model.pointer_chase_ns(MemoryScheme.DDR5_R1))
        assert ratio == pytest.approx(2.2, abs=0.3)

    def test_chase_below_flushed_load(self, model):
        """Pointer chasing skips the flushed-line handshake."""
        for scheme in MemoryScheme:
            assert (model.pointer_chase_ns(scheme)
                    < model.flushed_load_ns(scheme))


class TestPrefetchToggle:
    """MEMO's prefetch knob (§4.1): huge for streams, useless for chains."""

    def test_prefetch_hides_most_sequential_latency(self, model):
        for scheme in MemoryScheme:
            prefetched = model.prefetched_sequential_read_ns(scheme)
            demand = model.read_path_ns(scheme)
            assert prefetched < 0.4 * demand

    def test_prefetch_gain_larger_on_cxl(self, model):
        """The slower the memory, the more a covered line saves."""
        cxl_saving = (model.read_path_ns(MemoryScheme.CXL)
                      - model.prefetched_sequential_read_ns(
                          MemoryScheme.CXL))
        l8_saving = (model.read_path_ns(MemoryScheme.DDR5_L8)
                     - model.prefetched_sequential_read_ns(
                         MemoryScheme.DDR5_L8))
        assert cxl_saving > 2 * l8_saving

    def test_chase_unaffected_by_prefetch_by_construction(self, model):
        """pointer_chase_ns *is* the prefetch-off number — dependent
        chains defeat stride detection, so there is no "with prefetch"
        variant to model (Fig 2 disables prefetch for exactly this
        measurement)."""
        assert (model.pointer_chase_ns(MemoryScheme.CXL)
                == model.read_path_ns(MemoryScheme.CXL))


class TestWssStaircase:
    def test_small_wss_hides_scheme_differences(self, model):
        """Inside L1, the backing memory is irrelevant."""
        l8 = model.pointer_chase_ns(MemoryScheme.DDR5_L8, units.kib(16))
        cxl = model.pointer_chase_ns(MemoryScheme.CXL, units.kib(16))
        assert cxl == pytest.approx(l8, rel=0.02)

    def test_large_wss_recovers_full_chase(self, model):
        big = model.pointer_chase_ns(MemoryScheme.CXL, units.gib(4))
        flat = model.pointer_chase_ns(MemoryScheme.CXL)
        assert big == pytest.approx(flat, rel=0.1)

    def test_staircase_is_monotone(self, model):
        sizes = [units.kib(16), units.kib(512), units.mib(16),
                 units.mib(128), units.gib(1)]
        for scheme in MemoryScheme:
            values = [model.pointer_chase_ns(scheme, s) for s in sizes]
            assert values == sorted(values)

    def test_schemes_diverge_beyond_llc(self, model):
        """The staircase splits only after the 105 MB LLC (Fig 2 right)."""
        beyond = units.gib(1)
        l8 = model.pointer_chase_ns(MemoryScheme.DDR5_L8, beyond)
        cxl = model.pointer_chase_ns(MemoryScheme.CXL, beyond)
        assert cxl > 2.5 * l8
