"""System assembly: topology, backends, schemes, SNC, thread pinning."""

import pytest

from repro import (
    build_system,
    combined_testbed,
    dual_socket_testbed,
    single_socket_testbed,
)
from repro.cpu import MemoryScheme, pin_threads
from repro.errors import ConfigError
from repro.topology import Membind, MemoryKind


class TestSingleSocketSystem:
    def setup_method(self):
        self.system = build_system(single_socket_testbed())

    def test_nodes(self):
        assert len(self.system.topology.nodes) == 2    # local + CXL
        assert self.system.topology.node(0).kind is MemoryKind.DRAM_LOCAL
        assert self.system.topology.node(1).kind is MemoryKind.CXL

    def test_cxl_node_is_cpuless(self):
        assert self.system.topology.node(self.system.cxl_node_id).is_cpuless

    def test_schemes_exclude_remote(self):
        schemes = self.system.available_schemes()
        assert MemoryScheme.DDR5_L8 in schemes
        assert MemoryScheme.CXL in schemes
        assert MemoryScheme.DDR5_R1 not in schemes

    def test_r1_request_raises(self):
        with pytest.raises(ConfigError):
            self.system.scheme_backend(MemoryScheme.DDR5_R1)

    def test_allocator_covers_cxl_capacity(self):
        node = self.system.cxl_node_id
        from repro import units
        assert self.system.allocator.capacity_pages(node) == \
            units.gib(16) // units.kib(4)


class TestDualSocketSystem:
    def setup_method(self):
        self.system = build_system(dual_socket_testbed())

    def test_remote_node_exists(self):
        assert self.system.has_remote_socket
        assert self.system.topology.node(1).kind is MemoryKind.DRAM_REMOTE

    def test_no_cxl(self):
        assert not self.system.has_cxl
        with pytest.raises(ConfigError):
            self.system.cxl_backend()

    def test_r1_backend_has_one_channel(self):
        backend = self.system.scheme_backend(MemoryScheme.DDR5_R1)
        assert backend.channel_count == 1
        assert backend.label == "DDR5-R1"

    def test_remote_node_backend_has_all_channels(self):
        backend = self.system.backend_for_node(1)
        assert backend.channel_count == 8

    def test_remote_read_slower_than_local(self):
        local = self.system.scheme_backend(MemoryScheme.DDR5_L8)
        remote = self.system.scheme_backend(MemoryScheme.DDR5_R1)
        assert remote.idle_read_ns() > local.idle_read_ns()


class TestCombinedSystem:
    def setup_method(self):
        self.system = build_system(combined_testbed())

    def test_all_three_schemes(self):
        assert self.system.available_schemes() == [
            MemoryScheme.DDR5_L8, MemoryScheme.DDR5_R1, MemoryScheme.CXL]

    def test_scheme_nodes(self):
        assert self.system.scheme_node(MemoryScheme.DDR5_L8) == 0
        assert self.system.scheme_node(MemoryScheme.DDR5_R1) == 1
        assert self.system.scheme_node(MemoryScheme.CXL) == 2

    def test_idle_read_ordering(self):
        """§4.2: L8 < R1 < CXL."""
        reads = [self.system.scheme_backend(s).idle_read_ns()
                 for s in (MemoryScheme.DDR5_L8, MemoryScheme.DDR5_R1,
                           MemoryScheme.CXL)]
        assert reads[0] < reads[1] < reads[2]

    def test_allocation_across_nodes(self):
        from repro import units
        allocation = self.system.allocator.allocate(
            units.mib(1), Membind(self.system.cxl_node_id))
        assert allocation.node_histogram() == {2: 256}


class TestSncMode:
    def test_snc_slices_channels(self):
        system = build_system(single_socket_testbed())
        snc = system.snc_system()
        assert snc.socket.config.dram.channels == 2
        assert snc.socket.config.cores == 8

    def test_snc_backend_label(self):
        snc = build_system(single_socket_testbed(), ) .snc_system()
        assert snc.socket.local_backend().label == "SNC-DDR5-L2"

    def test_snc_keeps_cxl_device(self):
        snc = build_system(single_socket_testbed()).snc_system()
        assert snc.has_cxl

    def test_snc_mesh_is_shorter(self):
        system = build_system(single_socket_testbed())
        snc = system.snc_system()
        assert snc.socket.mesh.traverse_ns() < system.socket.mesh.traverse_ns()


class TestThreadPinning:
    def test_one_thread_per_core(self):
        system = build_system(single_socket_testbed())
        threads = pin_threads(8, system.socket.cores)
        assert len(threads) == 8
        assert len({t.core.core_id for t in threads}) == 8

    def test_oversubscription_rejected(self):
        system = build_system(single_socket_testbed())
        with pytest.raises(ConfigError):
            pin_threads(33, system.socket.cores)

    def test_zero_threads_rejected(self):
        system = build_system(single_socket_testbed())
        with pytest.raises(ConfigError):
            pin_threads(0, system.socket.cores)

    def test_prefetch_flag_propagates(self):
        system = build_system(single_socket_testbed())
        threads = pin_threads(2, system.socket.cores,
                              prefetch_enabled=False)
        assert all(not t.prefetch_enabled for t in threads)
