"""Socket runtime: edge latency composition and SNC slicing."""

import pytest

from repro.config import single_socket_testbed
from repro.cpu.socket import Socket


@pytest.fixture(scope="module")
def socket():
    return Socket(single_socket_testbed().socket)


class TestLatencyComposition:
    def test_hierarchy_traversal_sums_levels(self, socket):
        expected = sum(level.latency_ns
                       for level in socket.config.cache.levels)
        assert socket.hierarchy_traversal_ns() == pytest.approx(expected)

    def test_edge_adds_mesh_and_home_agent(self, socket):
        edge = socket.socket_edge_ns()
        assert edge == pytest.approx(socket.hierarchy_traversal_ns()
                                     + socket.mesh.traverse_ns()
                                     + socket.config.home_agent_ns)

    def test_fresh_hierarchies_are_independent(self, socket):
        first = socket.new_hierarchy()
        second = socket.new_hierarchy()
        first.load(0)
        assert first.l1.contains(0)
        assert not second.l1.contains(0)


class TestSncSlicing:
    def test_snc_socket_has_quarter_resources(self):
        config = single_socket_testbed().socket
        snc = Socket(config, snc=True)
        assert snc.config.cores == config.cores // 4
        assert snc.config.dram.channels == config.dram.channels // 4

    def test_snc_edge_is_shorter(self):
        config = single_socket_testbed().socket
        full = Socket(config)
        snc = Socket(config, snc=True)
        assert snc.socket_edge_ns() < full.socket_edge_ns()

    def test_backend_labels(self):
        config = single_socket_testbed().socket
        assert Socket(config).local_backend().label == "DDR5-L8"
        assert Socket(config, snc=True).local_backend().label == \
            "SNC-DDR5-L2"

    def test_core_count_matches_config(self, socket):
        assert len(socket.cores) == socket.config.cores
        assert socket.cores[5].core_id == 5
