"""Core MLP model and Little's-law per-thread bandwidth."""

import pytest

from repro.config import CoreConfig
from repro.cpu import AccessKind, Core
from repro.cpu.core import WRITE_ACCEPTANCE_NS
from repro.mem import AccessPattern


def make_core() -> Core:
    return Core(CoreConfig())


class TestEffectiveMlp:
    def test_pointer_chase_has_no_parallelism(self):
        core = make_core()
        for kind in (AccessKind.LOAD, AccessKind.STORE, AccessKind.NT_STORE):
            assert core.effective_mlp(kind, AccessPattern.POINTER_CHASE) == 1.0

    def test_loads_use_most_fill_buffers(self):
        mlp = make_core().effective_mlp(AccessKind.LOAD,
                                        AccessPattern.SEQUENTIAL)
        assert 10 <= mlp <= 16

    def test_stores_below_loads(self):
        core = make_core()
        assert (core.effective_mlp(AccessKind.STORE, AccessPattern.SEQUENTIAL)
                < core.effective_mlp(AccessKind.LOAD,
                                     AccessPattern.SEQUENTIAL))

    def test_nt_store_uses_wc_buffers(self):
        core = make_core()
        assert core.effective_mlp(
            AccessKind.NT_STORE, AccessPattern.SEQUENTIAL) == \
            core.config.wc_buffers

    def test_mlp_capped_by_fill_buffers(self):
        small = Core(CoreConfig(fill_buffers=6))
        assert small.effective_mlp(AccessKind.LOAD,
                                   AccessPattern.SEQUENTIAL) == 6


class TestServiceLatency:
    def test_load_pays_read_path(self):
        core = make_core()
        service = core.service_latency_ns(AccessKind.LOAD,
                                          read_latency_ns=100.0,
                                          write_latency_ns=100.0)
        assert service == pytest.approx(100.0 + core.config.issue_overhead_ns)

    def test_store_pays_rfo_plus_writeback_share(self):
        core = make_core()
        store = core.service_latency_ns(AccessKind.STORE,
                                        read_latency_ns=100.0,
                                        write_latency_ns=100.0)
        load = core.service_latency_ns(AccessKind.LOAD,
                                       read_latency_ns=100.0,
                                       write_latency_ns=100.0)
        assert store > load

    def test_nt_store_is_acceptance_bound_not_device_bound(self):
        """Posted writes complete at uncore acceptance, so the device's
        latency does not appear in their service time (Fig-3 anchor)."""
        core = make_core()
        near = core.service_latency_ns(AccessKind.NT_STORE,
                                       read_latency_ns=100.0,
                                       write_latency_ns=105.0)
        far = core.service_latency_ns(AccessKind.NT_STORE,
                                      read_latency_ns=400.0,
                                      write_latency_ns=390.0)
        assert near == far
        assert near == pytest.approx(
            core.config.issue_overhead_ns + WRITE_ACCEPTANCE_NS)

    def test_movdir_dominated_by_source_read(self):
        """§4.3.1: slower loads from CXL lower movdir64B throughput."""
        core = make_core()
        fast_src = core.service_latency_ns(AccessKind.MOVDIR64B,
                                           read_latency_ns=100.0,
                                           write_latency_ns=400.0)
        slow_src = core.service_latency_ns(AccessKind.MOVDIR64B,
                                           read_latency_ns=400.0,
                                           write_latency_ns=100.0)
        assert slow_src > fast_src


class TestPeakThreadBandwidth:
    def test_littles_law(self):
        core = make_core()
        bw = core.peak_thread_bandwidth(AccessKind.LOAD,
                                        AccessPattern.SEQUENTIAL,
                                        read_latency_ns=98.0,
                                        write_latency_ns=98.0)
        mlp = core.effective_mlp(AccessKind.LOAD, AccessPattern.SEQUENTIAL)
        assert bw == pytest.approx(mlp * 64 / 100e-9)

    def test_higher_latency_lowers_bandwidth(self):
        core = make_core()
        near = core.peak_thread_bandwidth(AccessKind.LOAD,
                                          AccessPattern.SEQUENTIAL,
                                          read_latency_ns=106.0,
                                          write_latency_ns=106.0)
        far = core.peak_thread_bandwidth(AccessKind.LOAD,
                                         AccessPattern.SEQUENTIAL,
                                         read_latency_ns=387.0,
                                         write_latency_ns=390.0)
        assert near / far == pytest.approx(387 / 106, rel=0.1)
