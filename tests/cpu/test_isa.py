"""Access kinds: the RFO traffic table and ordering semantics."""

from repro.cpu import AccessKind


class TestTrafficAccounting:
    def test_load(self):
        assert AccessKind.LOAD.bus_reads_per_line == 1
        assert AccessKind.LOAD.bus_writes_per_line == 0
        assert AccessKind.LOAD.traffic_factor == 1

    def test_temporal_store_pays_rfo(self):
        """§4.3.1: RFO doubles the traffic of a temporal store."""
        assert AccessKind.STORE.bus_reads_per_line == 1
        assert AccessKind.STORE.bus_writes_per_line == 1
        assert AccessKind.STORE.traffic_factor == 2

    def test_nt_store_is_write_only(self):
        assert AccessKind.NT_STORE.bus_reads_per_line == 0
        assert AccessKind.NT_STORE.traffic_factor == 1

    def test_movdir_reads_and_writes(self):
        assert AccessKind.MOVDIR64B.bus_reads_per_line == 1
        assert AccessKind.MOVDIR64B.bus_writes_per_line == 1

    def test_store_traffic_is_double_nt_store(self):
        assert (AccessKind.STORE.traffic_factor
                == 2 * AccessKind.NT_STORE.traffic_factor)


class TestSemantics:
    def test_weak_ordering_needs_fences(self):
        """§6: 'both nt-store and movdir64B are weakly-ordered'."""
        assert AccessKind.NT_STORE.is_weakly_ordered
        assert AccessKind.MOVDIR64B.is_weakly_ordered
        assert not AccessKind.LOAD.is_weakly_ordered
        assert not AccessKind.STORE.is_weakly_ordered

    def test_cache_allocation(self):
        assert AccessKind.LOAD.allocates_in_cache
        assert AccessKind.STORE.allocates_in_cache
        assert not AccessKind.NT_STORE.allocates_in_cache
        assert not AccessKind.MOVDIR64B.allocates_in_cache

    def test_nt_store_frees_core_tracking(self):
        """§4.3.2: nt-store does not occupy core tracking resources."""
        assert not AccessKind.NT_STORE.occupies_core_tracking
        assert AccessKind.LOAD.occupies_core_tracking

    def test_write_classification(self):
        assert AccessKind.STORE.is_write
        assert AccessKind.NT_STORE.is_write
        assert not AccessKind.LOAD.is_write

    def test_labels_match_figure_legends(self):
        assert AccessKind.LOAD.value == "ld"
        assert AccessKind.STORE.value == "st+wb"
        assert AccessKind.NT_STORE.value == "nt-st"
