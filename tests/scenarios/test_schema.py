"""Negative-path schema validation: every failure is a structured
:class:`~repro.scenarios.schema.ValidationError` naming the offending
path — never a raw traceback."""

import pytest

from repro.scenarios import ValidationError, parse_scenario
from repro.scenarios.loader import load_document


def doc(**overrides):
    """A minimal valid scenario document; overrides replace sections."""
    base = {
        "name": "unit",
        "title": "Unit scenario",
        "topology": {"hosts": 2, "keys_per_host": 2000},
        "workload": {"qps": 50000, "requests": 400,
                     "fast_requests": 120},
        "checks": [{"kind": "all-complete"}],
    }
    base.update(overrides)
    return base


def doc_without(key):
    data = doc()
    del data[key]
    return data


def err(data, **kwargs):
    with pytest.raises(ValidationError) as excinfo:
        parse_scenario(data, **kwargs)
    return excinfo.value


class TestRequiredFields:
    @pytest.mark.parametrize("key,path", [
        ("name", "scenario.name"),
        ("title", "scenario.title"),
        ("topology", "scenario.topology"),
        ("workload", "scenario.workload"),
        ("checks", "scenario.checks"),
    ])
    def test_missing_top_level_field(self, key, path):
        exc = err(doc_without(key))
        assert exc.path == path
        assert "required field is missing" in exc.reason

    def test_minimal_document_parses(self):
        scenario = parse_scenario(doc())
        assert scenario.name == "unit"
        assert scenario.experiment_id == "scn-unit"

    def test_qps_needed_when_not_swept(self):
        exc = err(doc(workload={"requests": 400}))
        assert exc.path == "scenario.workload.qps"
        assert "pin it or sweep" in exc.reason

    def test_empty_checks_rejected(self):
        exc = err(doc(checks=[]))
        assert exc.path == "scenario.checks"
        assert "at least one" in exc.reason

    def test_faults_plan_required(self):
        exc = err(doc(faults={"monotone": False}))
        assert exc.path == "scenario.faults.plan"

    def test_link_down_host_required(self):
        exc = err(doc(faults={"plan": {"stall_rate": 0.01},
                              "link_down": {}}))
        assert exc.path == "scenario.faults.link_down.host"

    def test_non_object_document(self):
        exc = err([1, 2, 3])
        assert exc.path == "scenario"
        assert "expected object" in exc.reason


class TestWrongTypes:
    def test_bool_is_not_int(self):
        exc = err(doc(topology={"hosts": True}))
        assert exc.path == "scenario.topology.hosts"
        assert "expected int, got bool" in exc.reason

    def test_string_is_not_int(self):
        exc = err(doc(topology={"hosts": "4"}))
        assert exc.path == "scenario.topology.hosts"
        assert "expected int" in exc.reason

    def test_bool_is_not_number(self):
        exc = err(doc(workload={"qps": 50000, "theta": True,
                                "requests": 400}))
        assert exc.path == "scenario.workload.theta"
        assert "expected number, got bool" in exc.reason

    def test_int_is_not_bool(self):
        exc = err(doc(faults={"plan": {"stall_rate": 0.01},
                              "monotone": 1}))
        assert exc.path == "scenario.faults.monotone"
        assert "expected bool" in exc.reason

    def test_number_is_not_str(self):
        exc = err(doc(title=3))
        assert exc.path == "scenario.title"
        assert "expected str" in exc.reason

    def test_list_is_not_object(self):
        exc = err(doc(topology=[1]))
        assert exc.path == "scenario.topology"
        assert "expected object, got list" in exc.reason

    def test_check_entries_are_objects(self):
        exc = err(doc(checks=["all-complete"]))
        assert exc.path == "scenario.checks[0]"
        assert "expected object" in exc.reason


class TestUnknownKeys:
    def test_top_level_unknown_key(self):
        exc = err(doc(extra=1))
        assert exc.path == "scenario.extra"
        assert "unknown key" in exc.reason
        assert "valid keys" in exc.reason

    def test_topology_typo_names_path_and_valid_keys(self):
        exc = err(doc(topology={"hostz": 4}))
        assert exc.path == "scenario.topology.hostz"
        assert "'hosts'" in exc.reason

    def test_check_unknown_key(self):
        exc = err(doc(checks=[{"kind": "bound", "metricc": "p99_us"}]))
        assert exc.path == "scenario.checks[0].metricc"


class TestChoicesAndRanges:
    def test_unknown_router(self):
        exc = err(doc(router="random"))
        assert exc.path == "scenario.router"
        assert "must be one of" in exc.reason

    def test_unknown_device_preset(self):
        exc = err(doc(topology={"device": {"preset": "quantum"}}))
        assert exc.path == "scenario.topology.device.preset"

    def test_unknown_traffic_shape(self):
        exc = err(doc(traffic={"shape": "spiky"}))
        assert exc.path == "scenario.traffic.shape"

    def test_theta_zero_rejected(self):
        exc = err(doc(workload={"qps": 50000, "theta": 0,
                                "requests": 400}))
        assert exc.path == "scenario.workload.theta"
        assert "must be > 0" in exc.reason

    def test_theta_one_rejected(self):
        exc = err(doc(workload={"qps": 50000, "theta": 1,
                                "requests": 400}))
        assert exc.path == "scenario.workload.theta"
        assert "must be < 1" in exc.reason

    def test_pool_share_above_one(self):
        exc = err(doc(topology={"pool_share": 1.5}))
        assert exc.path == "scenario.topology.pool_share"

    def test_negative_seed(self):
        exc = err(doc(seed=-1))
        assert exc.path == "scenario.seed"

    def test_zero_requests(self):
        exc = err(doc(workload={"qps": 50000, "requests": 0}))
        assert exc.path == "scenario.workload.requests"

    def test_name_must_be_kebab(self):
        exc = err(doc(name="Not_Kebab"))
        assert exc.path == "scenario.name"
        assert "lowercase-kebab" in exc.reason

    def test_single_socket_preset_is_single_device(self):
        exc = err(doc(topology={"device": {"preset": "single-socket",
                                           "devices": 2}}))
        assert exc.path == "scenario.topology.device.devices"


class TestAxisConflicts:
    def test_qps_axis_conflicts_with_pinned_qps(self):
        exc = err(doc(axes={"qps": [10000, 20000]}))
        assert exc.path == "scenario.axes.qps"
        assert "pinned scenario.workload.qps" in exc.reason

    def test_hosts_axis_conflicts_with_pinned_hosts(self):
        exc = err(doc(axes={"hosts": [2, 4]}))
        assert exc.path == "scenario.axes.hosts"
        assert "pinned scenario.topology.hosts" in exc.reason

    def test_device_axis_conflicts_with_pinned_variant(self):
        exc = err(doc(topology={"hosts": 2,
                                "device": {"preset": "combined",
                                           "variant": "fpga"}},
                      axes={"device": ["fpga", "asic"]}))
        assert exc.path == "scenario.axes.device"
        assert "variant" in exc.reason

    def test_device_axis_without_pinned_variant_is_fine(self):
        scenario = parse_scenario(
            doc(topology={"hosts": 2, "device": {"preset": "combined"}},
                axes={"device": ["fpga", "asic"]},
                checks=[{"kind": "all-complete"}]))
        assert scenario.axis("device").values == ("fpga", "asic")

    def test_severity_axis_needs_faults(self):
        exc = err(doc(axes={"severity": [0.0, 1.0]}))
        assert exc.path == "scenario.axes.severity"
        assert "faults.plan" in exc.reason

    def test_unknown_axis(self):
        exc = err(doc(axes={"zipf": [1, 2]}))
        assert exc.path == "scenario.axes.zipf"
        assert "unknown axis" in exc.reason

    def test_empty_axis_values(self):
        exc = err(doc(axes={"qps": []}))
        assert exc.path == "scenario.axes.qps"
        assert "non-empty" in exc.reason

    def test_duplicate_axis_values(self):
        exc = err(doc(axes={"qps": [10000, 10000]}))
        assert exc.path == "scenario.axes.qps"
        assert "unique" in exc.reason

    def test_fast_values_must_be_subset(self):
        exc = err(doc(axes={"qps": {"values": [10000, 20000],
                                    "fast": [30000]}}))
        assert exc.path == "scenario.axes.qps.fast"
        assert "subset" in exc.reason

    def test_axis_value_type_checked(self):
        exc = err(doc(axes={"qps": ["fast"]}))
        assert exc.path == "scenario.axes.qps[0]"
        assert "expected number" in exc.reason

    def test_device_axis_value_choices_checked(self):
        exc = err(doc(topology={"hosts": 2},
                      axes={"device": ["fpga", "gpu"]}))
        assert exc.path == "scenario.axes.device[1]"
        assert "must be one of" in exc.reason


class TestCheckValidation:
    def test_unknown_kind(self):
        exc = err(doc(checks=[{"kind": "eventually-correct"}]))
        assert exc.path == "scenario.checks[0].kind"

    def test_monotone_needs_axis(self):
        exc = err(doc(checks=[{"kind": "monotone"}]))
        assert exc.path == "scenario.checks[0].axis"
        assert "needs an axis" in exc.reason

    def test_monotone_axis_must_be_swept(self):
        exc = err(doc(workload={"requests": 400},
                      axes={"qps": [10000, 20000]},
                      checks=[{"kind": "monotone", "axis": "hosts"}]))
        assert exc.path == "scenario.checks[0].axis"
        assert "not swept" in exc.reason

    def test_monotone_direction_vocabulary(self):
        exc = err(doc(workload={"requests": 400},
                      axes={"qps": [10000, 20000]},
                      checks=[{"kind": "monotone", "axis": "qps",
                               "direction": "increasing"}]))
        assert exc.path == "scenario.checks[0].direction"

    def test_ordering_direction_vocabulary(self):
        exc = err(doc(workload={"requests": 400},
                      axes={"qps": [10000, 20000]},
                      checks=[{"kind": "ordering", "axis": "qps",
                               "direction": "nondecreasing"}]))
        assert exc.path == "scenario.checks[0].direction"

    def test_bound_needs_metric(self):
        exc = err(doc(checks=[{"kind": "bound", "min": 0}]))
        assert exc.path == "scenario.checks[0].metric"

    def test_bound_needs_min_or_max(self):
        exc = err(doc(checks=[{"kind": "bound", "metric": "p99_us"}]))
        assert exc.path == "scenario.checks[0]"
        assert "min and/or a max" in exc.reason

    def test_all_complete_takes_no_parameters(self):
        exc = err(doc(checks=[{"kind": "all-complete",
                               "metric": "p99_us"}]))
        assert exc.path == "scenario.checks[0]"
        assert "takes no parameters" in exc.reason

    def test_fault_monotone_needs_declared_monotonicity(self):
        exc = err(doc(workload={"requests": 400},
                      faults={"plan": {"stall_rate": 0.01},
                              "monotone": False},
                      axes={"qps": [10000], "severity": [0.0, 1.0]},
                      checks=[{"kind": "fault-monotone"}]))
        assert exc.path == "scenario.checks[0]"
        assert "faults.monotone" in exc.reason

    def test_unknown_metric(self):
        exc = err(doc(checks=[{"kind": "bound", "metric": "p999_us",
                               "max": 1}]))
        assert exc.path == "scenario.checks[0].metric"


class TestVarsAndPlaceholders:
    def test_placeholder_takes_native_type(self):
        scenario = parse_scenario(
            doc(vars={"QPS": 120000},
                workload={"qps": "{{ QPS }}", "requests": 400}))
        assert scenario.workload.qps == 120000.0

    def test_embedded_placeholder_interpolates(self):
        scenario = parse_scenario(
            doc(vars={"QPS": 120000}, title="run at {{ QPS }} qps",
                workload={"qps": "{{ QPS }}", "requests": 400}))
        assert scenario.title == "run at 120000 qps"

    def test_caller_variables_override_document_vars(self):
        scenario = parse_scenario(
            doc(vars={"QPS": 100000},
                workload={"qps": "{{ QPS }}", "requests": 400}),
            variables={"QPS": 200000})
        assert scenario.workload.qps == 200000.0

    def test_undefined_placeholder_names_path(self):
        exc = err(doc(workload={"qps": "{{ NOPE }}",
                                "requests": 400}))
        assert exc.path == "scenario.workload.qps"
        assert "undefined placeholder" in exc.reason

    def test_variable_names_are_identifiers(self):
        exc = err(doc(vars={"1bad": 1}))
        assert exc.path == "scenario.vars.1bad"

    def test_variable_values_are_scalars(self):
        exc = err(doc(vars={"X": [1, 2]}))
        assert exc.path == "scenario.vars.X"
        assert "scalars" in exc.reason

    def test_variable_values_may_not_nest_placeholders(self):
        exc = err(doc(vars={"X": "{{ Y }}"},
                      title="{{ X }}"))
        assert "may not contain placeholders" in exc.reason


class TestFaultsValidation:
    def test_bad_plan_field_surfaces_as_validation_error(self):
        exc = err(doc(faults={"plan": {"bogus_rate": 1}}))
        assert exc.path == "scenario.faults.plan"

    def test_link_down_needs_surviving_host(self):
        exc = err(doc(topology={"hosts": 1},
                      faults={"plan": {"stall_rate": 0.01},
                              "link_down": {"host": 0}}))
        assert exc.path == "scenario.faults.link_down"
        assert "surviving host" in exc.reason

    def test_link_down_host_within_fleet(self):
        exc = err(doc(faults={"plan": {"stall_rate": 0.01},
                              "link_down": {"host": 5}}))
        assert exc.path == "scenario.faults.link_down.host"

    def test_link_down_at_fraction_range(self):
        exc = err(doc(faults={"plan": {"stall_rate": 0.01},
                              "link_down": {"host": 1,
                                            "at_fraction": 0}}))
        assert exc.path == "scenario.faults.link_down.at_fraction"


class TestLoader:
    def test_missing_file(self, tmp_path):
        with pytest.raises(ValidationError) as excinfo:
            load_document(tmp_path / "nope.json")
        assert "does not exist" in str(excinfo.value)

    def test_invalid_json(self, tmp_path):
        path = tmp_path / "broken.json"
        path.write_text("{not json")
        with pytest.raises(ValidationError) as excinfo:
            load_document(path)
        assert "invalid JSON" in str(excinfo.value)

    def test_duplicate_keys_rejected(self, tmp_path):
        path = tmp_path / "dup.json"
        path.write_text('{"name": "a", "name": "b"}')
        with pytest.raises(ValidationError) as excinfo:
            load_document(path)
        assert "duplicate key" in str(excinfo.value)

    def test_unknown_suffix(self, tmp_path):
        path = tmp_path / "scenario.toml"
        path.write_text("x = 1")
        with pytest.raises(ValidationError) as excinfo:
            load_document(path)
        assert "unknown scenario suffix" in str(excinfo.value)

    def test_yaml_without_pyyaml_is_a_clean_refusal(self, tmp_path):
        from repro.scenarios import loader
        if loader._yaml is not None:
            pytest.skip("PyYAML installed; the refusal path is dormant")
        path = tmp_path / "scenario.yaml"
        path.write_text("name: x")
        with pytest.raises(ValidationError) as excinfo:
            load_document(path)
        assert "PyYAML" in str(excinfo.value)
