"""The grid expander and placeholder substitution, example-based.

The hypothesis suite (test_property.py) pins the same properties over
random inputs; these are the readable anchors.
"""

import pytest

from repro.scenarios import (ValidationError, expand_grid,
                             find_placeholders, substitute)


class TestExpandGrid:
    def test_declaration_order_last_axis_fastest(self):
        points = expand_grid({"a": [1, 2], "b": [10, 20]})
        assert points == [{"a": 1, "b": 10}, {"a": 1, "b": 20},
                          {"a": 2, "b": 10}, {"a": 2, "b": 20}]

    def test_empty_axes_yield_one_empty_point(self):
        assert expand_grid({}) == [{}]

    def test_single_axis(self):
        assert expand_grid({"qps": [1, 2, 3]}) == [
            {"qps": 1}, {"qps": 2}, {"qps": 3}]

    def test_three_axes_cover_cross_product_once(self):
        points = expand_grid({"a": [0, 1], "b": [0, 1], "c": [0, 1]})
        assert len(points) == 8
        assert len({tuple(sorted(p.items())) for p in points}) == 8

    def test_expansion_is_deterministic(self):
        axes = {"x": [3, 1, 2], "y": [True, False]}
        assert expand_grid(axes) == expand_grid(axes)

    def test_empty_value_list_rejected(self):
        with pytest.raises(ValidationError) as excinfo:
            expand_grid({"a": []})
        assert excinfo.value.path == "scenario.axes.a"

    def test_non_list_rejected(self):
        with pytest.raises(ValidationError):
            expand_grid({"a": "not-a-list"})

    def test_duplicate_values_rejected(self):
        with pytest.raises(ValidationError) as excinfo:
            expand_grid({"a": [1, 1]})
        assert "unique" in str(excinfo.value)

    def test_bool_and_int_values_are_distinct(self):
        # repr-based uniqueness: True and 1 are different axis values.
        points = expand_grid({"a": [True, 1]})
        assert len(points) == 2


class TestSubstitute:
    def test_whole_string_placeholder_keeps_native_type(self):
        assert substitute("{{ QPS }}", {"QPS": 120000}) == 120000
        assert substitute("{{ ON }}", {"ON": True}) is True

    def test_embedded_placeholder_is_string_interpolation(self):
        assert substitute("run {{ N }} times", {"N": 3}) == \
            "run 3 times"

    def test_whitespace_inside_braces_is_flexible(self):
        assert substitute("{{QPS}}", {"QPS": 5}) == 5
        assert substitute("{{  QPS  }}", {"QPS": 5}) == 5

    def test_nested_trees(self):
        tree = {"w": {"qps": "{{ QPS }}"}, "axes": ["{{ QPS }}", 7]}
        out = substitute(tree, {"QPS": 9})
        assert out == {"w": {"qps": 9}, "axes": [9, 7]}

    def test_substitution_is_idempotent(self):
        tree = {"title": "at {{ QPS }}", "qps": "{{ QPS }}"}
        variables = {"QPS": 80000}
        once = substitute(tree, variables)
        assert substitute(once, variables) == once

    def test_undefined_placeholder_names_path(self):
        with pytest.raises(ValidationError) as excinfo:
            substitute({"workload": {"qps": "{{ NOPE }}"}}, {})
        assert excinfo.value.path == "scenario.workload.qps"
        assert "undefined placeholder" in excinfo.value.reason

    def test_variable_values_may_not_contain_placeholders(self):
        with pytest.raises(ValidationError) as excinfo:
            substitute({"a": 1}, {"X": "{{ Y }}"})
        assert "may not contain placeholders" in str(excinfo.value)

    def test_non_strings_pass_through(self):
        tree = {"n": 5, "f": 1.5, "b": False, "none": None}
        assert substitute(tree, {}) == tree


class TestFindPlaceholders:
    def test_collects_from_every_level(self):
        tree = {"a": "{{ X }}", "b": ["{{ Y }} and {{ X }}"],
                "{{ K }}": 1}
        assert find_placeholders(tree) == {"X", "Y", "K"}

    def test_empty_for_plain_trees(self):
        assert find_placeholders({"a": [1, "two", None]}) == set()
