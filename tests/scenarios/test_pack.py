"""The shipped starter pack: every file registers, no orphans, and the
golden-verdict file covers every scenario."""

import json
from pathlib import Path

from repro.experiments import REGISTRY          # registers the pack
from repro.scenarios import (PACK_DIR, load_pack, load_scenario_file,
                             pack_files, point_grid, register_pack)

GOLDEN = Path(__file__).resolve().parent.parent / "experiments" / \
    "golden_checks.json"

SCENARIOS = load_pack()


class TestPackIntegrity:
    def test_pack_ships_at_least_ten_scenarios(self):
        assert len(SCENARIOS) >= 10

    def test_every_pack_file_is_registered_no_orphans(self):
        file_names = {path.stem for path in pack_files()}
        registered = {eid.removeprefix("scn-") for eid in REGISTRY
                      if eid.startswith("scn-")}
        orphans = file_names - registered
        assert not orphans, f"pack files never registered: {orphans}"

    def test_file_names_match_scenario_names(self):
        for path in pack_files():
            assert load_scenario_file(path).name == path.stem, \
                f"{path.name} declares a different scenario name"

    def test_names_are_unique(self):
        names = [scenario.name for scenario in SCENARIOS]
        assert len(set(names)) == len(names)

    def test_register_pack_is_idempotent(self):
        first = register_pack()
        second = register_pack()
        assert first == second
        assert all(eid in REGISTRY for eid in first)

    def test_pack_dir_is_the_package_data_dir(self):
        assert PACK_DIR.is_dir()
        assert PACK_DIR.name == "pack"


class TestPackMetadata:
    def test_titles_and_paper_refs(self):
        for scenario in SCENARIOS:
            assert scenario.title
            assert "§" in scenario.paper_ref

    def test_every_scenario_has_an_acceptance_check(self):
        for scenario in SCENARIOS:
            assert len(scenario.checks) >= 1

    def test_fast_grids_stay_small(self):
        # Fast mode is what CI runs; a scenario whose fast grid
        # explodes would silently dominate the suite wall clock.
        for scenario in SCENARIOS:
            assert len(point_grid(scenario, fast=True)) <= 6, \
                scenario.name

    def test_pack_exercises_the_format_surface(self):
        shapes = {scenario.traffic.shape for scenario in SCENARIOS}
        assert {"constant", "bursty", "diurnal"} <= shapes
        presets = {scenario.topology.device.preset
                   for scenario in SCENARIOS}
        assert "hetero-pool" in presets
        assert any(scenario.faults is not None
                   for scenario in SCENARIOS)
        assert any(scenario.axis("device") for scenario in SCENARIOS)
        assert any(scenario.router == "least-loaded"
                   for scenario in SCENARIOS)


class TestGoldenCoverage:
    def test_golden_file_covers_every_scenario(self):
        golden = json.loads(GOLDEN.read_text())["experiments"]
        for scenario in SCENARIOS:
            assert scenario.experiment_id in golden, \
                (f"{scenario.experiment_id} missing from golden "
                 f"checks; rerun with REPRO_REGEN_GOLDEN=1")

    def test_golden_verdicts_all_pass(self):
        golden = json.loads(GOLDEN.read_text())["experiments"]
        for scenario in SCENARIOS:
            checks = golden[scenario.experiment_id]
            assert checks, scenario.experiment_id
            failing = [c["claim"] for c in checks if not c["passed"]]
            assert not failing, failing

    def test_golden_check_count_matches_declared_checks(self):
        golden = json.loads(GOLDEN.read_text())["experiments"]
        for scenario in SCENARIOS:
            assert len(golden[scenario.experiment_id]) == \
                len(scenario.checks), scenario.experiment_id
