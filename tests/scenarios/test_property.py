"""Hypothesis properties for the grid expander and substitution.

Pinned properties (docs/SCENARIOS.md):

* expansion is **order-deterministic** — same axes, same point list;
* expansion covers the **full cross-product exactly once**, with the
  last declared axis varying fastest (lexicographic in value indices);
* substitution is **idempotent** — a substituted tree substitutes to
  itself — and a whole-string placeholder takes the variable's native
  type.
"""

import itertools

from hypothesis import given, settings, strategies as st

from repro.scenarios import expand_grid, find_placeholders, substitute

axes_st = st.dictionaries(
    keys=st.sampled_from(["a", "b", "c", "d"]),
    values=st.lists(st.integers(-50, 50), min_size=1, max_size=4,
                    unique=True),
    max_size=3)

_scalars = st.one_of(
    st.integers(-99, 99),
    st.booleans(),
    st.text(alphabet="abc xyz", max_size=8))

_names = ("ALPHA", "BETA", "G_2")

variables_st = st.fixed_dictionaries(
    {name: _scalars for name in _names})

_leaf = st.one_of(
    _scalars,
    st.none(),
    st.sampled_from(_names).map(lambda n: f"{{{{ {n} }}}}"),
    st.tuples(st.text(alphabet="ab", max_size=4),
              st.sampled_from(_names)).map(
        lambda pair: f"{pair[0]} {{{{ {pair[1]} }}}} end"))

trees_st = st.recursive(
    _leaf,
    lambda child: st.one_of(
        st.lists(child, max_size=3),
        st.dictionaries(st.sampled_from(["k1", "k2", "k3"]), child,
                        max_size=3)),
    max_leaves=8)


class TestGridProperties:
    @settings(max_examples=100, deadline=None)
    @given(axes_st)
    def test_expansion_is_order_deterministic(self, axes):
        assert expand_grid(axes) == expand_grid(axes)

    @settings(max_examples=100, deadline=None)
    @given(axes_st)
    def test_full_cross_product_exactly_once(self, axes):
        points = expand_grid(axes)
        expected = {
            combo for combo in itertools.product(
                *(axes[name] for name in axes))}
        got = [tuple(point[name] for name in axes)
               for point in points]
        assert len(points) == len(expected)
        assert set(got) == expected
        assert len(set(got)) == len(got)

    @settings(max_examples=100, deadline=None)
    @given(axes_st)
    def test_points_carry_axes_in_declaration_order(self, axes):
        for point in expand_grid(axes):
            assert list(point) == list(axes)

    @settings(max_examples=100, deadline=None)
    @given(axes_st)
    def test_last_axis_varies_fastest(self, axes):
        # The sequence of per-axis value indices is lexicographically
        # sorted, which is exactly "declaration order, last fastest".
        points = expand_grid(axes)
        indices = [tuple(axes[name].index(point[name])
                         for name in axes)
                   for point in points]
        assert indices == sorted(indices)


class TestSubstitutionProperties:
    @settings(max_examples=100, deadline=None)
    @given(trees_st, variables_st)
    def test_substitution_is_idempotent(self, tree, variables):
        once = substitute(tree, variables)
        assert substitute(once, variables) == once

    @settings(max_examples=100, deadline=None)
    @given(trees_st, variables_st)
    def test_substituted_tree_has_no_placeholders_left(self, tree,
                                                       variables):
        assert find_placeholders(substitute(tree, variables)) == set()

    @settings(max_examples=100, deadline=None)
    @given(st.sampled_from(_names), variables_st)
    def test_whole_string_placeholder_is_typed(self, name, variables):
        value = substitute(f"{{{{ {name} }}}}", variables)
        assert value == variables[name]
        assert type(value) is type(variables[name])
