"""The ``--scenario`` surface of both CLIs, and the unknown-id error
contract (exit 2, structured message, valid ids listed — including
scenario-derived ones — never a traceback)."""

import json

import pytest

from repro.experiments.runner import build_parser, main
from repro.memo.cli import main as memo_main
from repro.scenarios import load_pack

QUIET = ["--no-cache", "--no-checkpoint", "--no-ledger",
         "--no-progress"]

BY_NAME = {scenario.name: scenario for scenario in load_pack()}


class TestScenarioFlag:
    def test_parser_accumulates(self):
        args = build_parser().parse_args(
            ["--scenario", "steady-baseline", "--scenario", "pack"])
        assert args.scenario == ["steady-baseline", "pack"]

    def test_run_pack_scenario_by_name(self, capsys):
        assert main(["--scenario", "steady-baseline"] + QUIET) == 0
        out = capsys.readouterr().out
        assert "scn-steady-baseline" in out
        assert "[PASS]" in out

    def test_scn_prefix_also_resolves(self, capsys):
        assert main(["--scenario", "scn-steady-baseline"] + QUIET) == 0
        assert "scn-steady-baseline" in capsys.readouterr().out

    def test_scenario_combines_with_ids(self, capsys):
        assert main(["table1", "--scenario", "steady-baseline"]
                    + QUIET) == 0
        out = capsys.readouterr().out
        assert "table1" in out
        assert "scn-steady-baseline" in out

    def test_scenario_file_path(self, tmp_path, capsys):
        document = dict(BY_NAME["steady-baseline"].to_dict())
        document["name"] = "cli-file-scenario"
        path = tmp_path / "cli-file-scenario.json"
        path.write_text(json.dumps(document))
        assert main(["--scenario", str(path)] + QUIET) == 0
        assert "scn-cli-file-scenario" in capsys.readouterr().out

    def test_unknown_scenario_exits_2_listing_the_pack(self, capsys):
        assert main(["--scenario", "no-such-scenario"] + QUIET) == 2
        err = capsys.readouterr().err
        assert "bad --scenario" in err
        assert "steady-baseline" in err       # the catalog rides along
        assert "Traceback" not in err

    def test_broken_scenario_file_exits_2(self, tmp_path, capsys):
        path = tmp_path / "broken.json"
        path.write_text("{not json")
        assert main(["--scenario", str(path)] + QUIET) == 2
        err = capsys.readouterr().err
        assert "bad --scenario" in err
        assert "invalid JSON" in err
        assert "Traceback" not in err

    def test_schema_error_names_the_offending_path(self, tmp_path,
                                                   capsys):
        document = dict(BY_NAME["steady-baseline"].to_dict())
        del document["title"]
        document["name"] = "cli-invalid-scenario"
        path = tmp_path / "cli-invalid-scenario.json"
        path.write_text(json.dumps(document))
        assert main(["--scenario", str(path)] + QUIET) == 2
        err = capsys.readouterr().err
        assert "scenario.title" in err
        assert "Traceback" not in err


class TestUnknownIdListing:
    """Regression: an unknown id lists every valid id — including the
    scenario-derived ``scn-*`` ones — plus the aliases, and exits 2."""

    def test_unknown_only_lists_scenario_ids(self, capsys):
        assert main(["--only", "nope"] + QUIET) == 2
        err = capsys.readouterr().err
        assert "unknown experiment id" in err
        assert "scn-steady-baseline" in err
        assert "figC=cluster-pooling" in err
        assert "Traceback" not in err

    def test_unknown_positional_id_same_contract(self, capsys):
        assert main(["bogus-id"] + QUIET) == 2
        err = capsys.readouterr().err
        assert "bogus-id" in err
        assert "scn-" in err


class TestMemoScenarioFlag:
    def test_latency_accepts_a_scenario_testbed(self, capsys):
        assert memo_main(["latency", "--scenario", "hetero-pool",
                          "--no-ledger"]) == 0
        assert capsys.readouterr().out.strip()

    def test_unknown_scenario_exits_2(self, capsys):
        assert memo_main(["latency", "--scenario", "bogus",
                          "--no-ledger"]) == 2
        err = capsys.readouterr().err
        assert "bad --scenario" in err
        assert "Traceback" not in err
