"""Round-trip identity: ``parse -> to_dict -> parse`` is exact for
every shipped scenario, which is what makes the content hash (and so
the result-cache key) a stable function of the document."""

import pytest

from repro.scenarios import load_pack, parse_scenario

SCENARIOS = load_pack()
BY_NAME = {scenario.name: scenario for scenario in SCENARIOS}


@pytest.mark.parametrize("scenario", SCENARIOS,
                         ids=[s.name for s in SCENARIOS])
class TestPackRoundTrip:
    def test_reparse_is_identity(self, scenario):
        again = parse_scenario(scenario.to_dict())
        assert again == scenario
        assert again.to_dict() == scenario.to_dict()

    def test_content_hash_is_stable(self, scenario):
        again = parse_scenario(scenario.to_dict())
        assert again.content_hash() == scenario.content_hash()
        assert len(scenario.content_hash()) == 16


class TestCanonicalForm:
    def test_axis_swept_workload_key_is_omitted(self):
        data = BY_NAME["steady-baseline"].to_dict()
        assert "qps" not in data["workload"]
        assert "qps" in data["axes"]

    def test_axis_swept_topology_key_is_omitted(self):
        data = BY_NAME["fleet-scaling"].to_dict()
        assert "hosts" not in data["topology"]

    def test_device_axis_omits_pinned_variant(self):
        data = BY_NAME["asic-vs-fpga"].to_dict()
        assert "variant" not in data["topology"]["device"]

    def test_pinned_keys_survive(self):
        data = BY_NAME["fault-severity"].to_dict()
        assert "qps" in data["workload"]        # pinned, not swept
        assert data["faults"]["monotone"] is True

    def test_hashes_are_unique_across_the_pack(self):
        hashes = {scenario.content_hash() for scenario in SCENARIOS}
        assert len(hashes) == len(SCENARIOS)

    def test_edit_changes_the_hash(self):
        scenario = BY_NAME["steady-baseline"]
        edited = dict(scenario.to_dict())
        edited["seed"] = scenario.seed + 1
        assert parse_scenario(edited).content_hash() != \
            scenario.content_hash()

    def test_vars_round_trip(self):
        # steady-baseline declares SKEW and references it via a
        # placeholder; the canonical form keeps the vars block.
        scenario = BY_NAME["steady-baseline"]
        assert dict(scenario.vars)
        again = parse_scenario(scenario.to_dict())
        assert again.vars == scenario.vars
