"""Conformance suite for the declarative scenario packs."""
