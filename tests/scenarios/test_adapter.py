"""The generic ScenarioExperiment adapter: parallel byte-identity,
fault-plan scaling, cache-key folding, and device profiles."""

import pytest

from repro.experiments import REGISTRY
from repro.experiments.runner import (_suite_config, config_for,
                                      run_config)
from repro.scenarios import build_testbed, load_pack, parse_scenario
from repro.scenarios.adapter import (_point_units, point_label,
                                     scenario_runner)
from repro.scenarios.spec import DeviceProfile

SCN = {scenario.name: scenario for scenario in load_pack()}


class TestParallelIdentity:
    def test_serial_and_jobs2_are_byte_identical(self):
        # bursty-traffic: multiple segments per point AND a sweep axis,
        # so the unit list genuinely shards.
        run = scenario_runner(SCN["bursty-traffic"])
        serial = run(True)
        sharded = run(True, jobs=2)
        assert serial.render() == sharded.render()
        assert serial.to_dict() == sharded.to_dict()

    def test_two_runs_are_deterministic(self):
        run = scenario_runner(SCN["steady-baseline"])
        assert run(True).render() == run(True).render()

    def test_result_carries_series_and_checks(self):
        result = scenario_runner(SCN["steady-baseline"])(True)
        assert result.experiment_id == "scn-steady-baseline"
        assert result.checks
        assert "points" in result.series
        assert "p99_us" in result.series["points"]


class TestFaultScaling:
    def test_severity_zero_runs_the_healthy_twin(self):
        scenario = SCN["fault-severity"]
        specs, _labels = _point_units(scenario, {"severity": 0.0},
                                      fast=True, fault_plan=None)
        _topo, sim_kwargs, _run, _ = specs[0]
        assert "fault_plans" not in sim_kwargs

    def test_severity_scales_every_rate(self):
        scenario = SCN["fault-severity"]
        specs, _labels = _point_units(scenario, {"severity": 3.0},
                                      fast=True, fault_plan=None)
        _topo, sim_kwargs, _run, _ = specs[0]
        plan = sim_kwargs["fault_plans"][0]
        base = scenario.faults.plan
        assert plan.stall_rate == pytest.approx(base.stall_rate * 3)
        assert plan.timeout_rate == pytest.approx(
            base.timeout_rate * 3)

    def test_cli_fault_plan_overrides_the_scenario_plan(self):
        from repro.faults import FaultPlan
        scenario = SCN["degraded-link"]
        override = FaultPlan(stall_rate=0.5, seed=99)
        specs, _labels = _point_units(scenario, {"qps": 80000.0},
                                      fast=True, fault_plan=override)
        _topo, sim_kwargs, _run, _ = specs[0]
        assert sim_kwargs["fault_plans"][0].stall_rate == 0.5

    def test_fault_monotone_scenario_passes(self):
        result = scenario_runner(SCN["fault-severity"])(True)
        assert result.passed, [str(c) for c in result.checks
                               if not c.passed]
        assert any("fault severity" in check.claim
                   for check in result.checks)


class TestCacheKeyFolding:
    def test_registry_entry_carries_the_content_hash(self):
        scenario = SCN["steady-baseline"]
        extra = REGISTRY["scn-steady-baseline"].extra_config
        assert extra == (("scenario_sha", scenario.content_hash()),)

    def test_config_for_folds_extras(self):
        base = run_config(True)
        folded = config_for("scn-steady-baseline", base)
        assert folded["extra"]["scenario_sha"] == \
            SCN["steady-baseline"].content_hash()
        assert "extra" not in base

    def test_non_scenario_experiments_keep_historical_config(self):
        base = run_config(True)
        assert config_for("table1", base) is base

    def test_suite_config_adds_extras_only_when_present(self):
        base = run_config(True)
        assert _suite_config(["table1", "fig3"], base) is base
        suite = _suite_config(["table1", "scn-steady-baseline"], base)
        assert "scn-steady-baseline" in suite["extras"]

    def test_editing_the_document_changes_the_folded_key(self):
        scenario = SCN["steady-baseline"]
        edited = dict(scenario.to_dict())
        edited["description"] = "edited"
        assert parse_scenario(edited).content_hash() != \
            scenario.content_hash()


class TestPointLabels:
    def test_empty_point_is_the_experiment_id(self):
        assert point_label(SCN["fault-severity"], {}) == \
            "scn-fault-severity"

    def test_qps_renders_in_thousands(self):
        label = point_label(SCN["steady-baseline"], {"qps": 80000.0})
        assert label == "scn-steady-baseline[qps=80k]"

    def test_multiple_axes_join_with_commas(self):
        label = point_label(SCN["fault-severity"],
                            {"qps": 140000.0, "severity": 2.0})
        assert label == "scn-fault-severity[qps=140k,severity=2]"


class TestDeviceProfiles:
    def test_hetero_pool_alternates_asic_and_fpga(self):
        testbed = build_testbed(DeviceProfile(preset="hetero-pool",
                                              devices=2))
        penalties = [device.fpga_penalty_ns
                     for device in testbed.cxl_devices]
        assert len(penalties) == 2
        assert sum(penalty == 0.0 for penalty in penalties) == 1

    def test_hetero_asic_variant_flips_the_pair_order(self):
        fpga_first = build_testbed(
            DeviceProfile(preset="hetero-pool", devices=2))
        asic_first = build_testbed(
            DeviceProfile(preset="hetero-pool", variant="asic",
                          devices=2))
        assert fpga_first.cxl_devices[0].fpga_penalty_ns > 0.0
        assert asic_first.cxl_devices[0].fpga_penalty_ns == 0.0

    def test_pooled_preset_honors_device_count(self):
        testbed = build_testbed(DeviceProfile(preset="pooled",
                                              devices=3))
        assert len(testbed.cxl_devices) == 3

    def test_asic_variant_sheds_the_fpga_penalty(self):
        fpga = build_testbed(DeviceProfile(preset="combined"))
        asic = build_testbed(DeviceProfile(preset="combined",
                                           variant="asic"))
        assert fpga.cxl_devices[0].fpga_penalty_ns > 0.0
        assert asic.cxl_devices[0].fpga_penalty_ns == 0.0
        assert asic.name.endswith("-asic")

    def test_device_axis_switches_the_testbed(self):
        scenario = SCN["asic-vs-fpga"]
        specs_fpga, _ = _point_units(scenario, {"device": "fpga"},
                                     fast=True, fault_plan=None)
        specs_asic, _ = _point_units(scenario, {"device": "asic"},
                                     fast=True, fault_plan=None)
        fpga_testbed = specs_fpga[0][0]["testbed"]
        asic_testbed = specs_asic[0][0]["testbed"]
        assert fpga_testbed.name != asic_testbed.name
        assert asic_testbed.cxl_devices[0].fpga_penalty_ns == 0.0
