"""Property tests: hierarchy invariants under arbitrary access streams.

Whatever sequence of loads, stores, nt-stores, and flushes runs, the
inclusive-LLC invariant must hold and the memory-traffic accounting
must stay conservative (hits move no memory, misses move exactly one
line plus writebacks).
"""

from hypothesis import given, settings, strategies as st

from repro.cache import CacheHierarchy
from repro.config import CacheConfig, CacheLevelConfig
from repro.telemetry import Telemetry


def tiny_hierarchy(telemetry=None) -> CacheHierarchy:
    """Small enough that random streams evict constantly."""
    return CacheHierarchy(CacheConfig(
        l1=CacheLevelConfig("L1d", 1024, ways=2, latency_ns=1.0),
        l2=CacheLevelConfig("L2", 4096, ways=4, latency_ns=4.0),
        llc=CacheLevelConfig("LLC", 16384, ways=8, latency_ns=12.0),
    ), telemetry=telemetry)


operations = st.lists(
    st.tuples(st.sampled_from(["load", "store", "nt_store", "clflush",
                               "clwb"]),
              st.integers(min_value=0, max_value=1 << 16)),
    min_size=1, max_size=300)


class TestInclusionProperties:
    @settings(max_examples=60, deadline=None)
    @given(operations)
    def test_inclusion_holds_after_any_stream(self, stream):
        hierarchy = tiny_hierarchy()
        for op, address in stream:
            getattr(hierarchy, op)(address)
        hierarchy.check_inclusion()      # raises CacheError on violation

    @settings(max_examples=30, deadline=None)
    @given(operations)
    def test_replaying_a_stream_is_deterministic(self, stream):
        def run():
            hierarchy = tiny_hierarchy()
            results = [getattr(hierarchy, op)(address)
                       for op, address in stream]
            return results, hierarchy.memory_writebacks

        assert run() == run()


class TestTrafficProperties:
    @settings(max_examples=60, deadline=None)
    @given(operations)
    def test_traffic_accounting_is_conservative(self, stream):
        hierarchy = tiny_hierarchy()
        for op, address in stream:
            result = getattr(hierarchy, op)(address)
            if op in ("clflush", "clwb"):
                continue                 # these return writeback counts
            assert result.latency_ns >= 0.0
            if result.hit:
                assert result.memory_reads == 0
                assert result.memory_writes == 0
            elif op in ("load", "store"):
                assert result.memory_reads == 1      # exactly one fill/RFO
            else:                                    # nt_store
                assert result.memory_reads == 0
                assert result.memory_writes >= 1     # the nt line itself

    @settings(max_examples=40, deadline=None)
    @given(operations)
    def test_registry_counters_mirror_functional_results(self, stream):
        telemetry = Telemetry.metrics_only()
        hierarchy = tiny_hierarchy(telemetry)
        reads = writes = 0
        for op, address in stream:
            result = getattr(hierarchy, op)(address)
            if op in ("clflush", "clwb"):
                continue
            reads += result.memory_reads
            writes += result.memory_writes
        registry = telemetry.registry
        measured_reads = registry.counter("cache.memory_reads").value \
            if "cache.memory_reads" in registry else 0
        measured_writes = registry.counter("cache.memory_writes").value \
            if "cache.memory_writes" in registry else 0
        assert measured_reads == reads
        assert measured_writes == writes

    @settings(max_examples=50, deadline=None)
    @given(st.integers(min_value=1, max_value=1 << 30))
    def test_hit_fractions_form_a_distribution(self, wss):
        fractions = tiny_hierarchy().hit_fractions(wss)
        assert abs(sum(fractions.values()) - 1.0) < 1e-9
        assert all(0.0 <= f <= 1.0 for f in fractions.values())
