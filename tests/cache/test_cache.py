"""Set-associative cache level: LRU, eviction, flush, invariants."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.config import CacheLevelConfig
from repro.errors import CacheError
from repro.cache import MesiState, SetAssociativeCache


def tiny_cache(ways=2, sets=4) -> SetAssociativeCache:
    """A 2-way, 4-set, 64 B-line cache (512 B) so evictions are easy."""
    config = CacheLevelConfig("tiny", capacity_bytes=ways * sets * 64,
                              ways=ways, latency_ns=1.0)
    return SetAssociativeCache(config)


def addr(set_index: int, way_tag: int, sets: int = 4) -> int:
    """An address mapping to ``set_index`` with a distinct tag."""
    return (way_tag * sets + set_index) * 64


class TestBasicAccess:
    def test_first_access_misses_then_hits(self):
        cache = tiny_cache()
        assert cache.access(0, write=False) is False
        assert cache.access(0, write=False) is True

    def test_addresses_in_same_line_share_it(self):
        cache = tiny_cache()
        cache.access(0, write=False)
        assert cache.access(63, write=False) is True
        assert cache.access(64, write=False) is False

    def test_stats_track_hits_and_misses(self):
        cache = tiny_cache()
        cache.access(0, write=False)
        cache.access(0, write=False)
        cache.access(64, write=False)
        assert cache.stats.hits == 1
        assert cache.stats.misses == 2
        assert cache.stats.hit_rate == pytest.approx(1 / 3)

    def test_hit_rate_of_untouched_cache_raises(self):
        with pytest.raises(CacheError):
            _ = tiny_cache().stats.hit_rate

    def test_store_marks_modified(self):
        cache = tiny_cache()
        cache.access(0, write=True)
        assert cache.lookup(0).state is MesiState.MODIFIED

    def test_load_installs_exclusive(self):
        cache = tiny_cache()
        cache.access(0, write=False)
        assert cache.lookup(0).state is MesiState.EXCLUSIVE


class TestLru:
    def test_lru_victim_is_least_recently_used(self):
        cache = tiny_cache(ways=2)
        a, b, c = addr(0, 0), addr(0, 1), addr(0, 2)
        cache.access(a, write=False)
        cache.access(b, write=False)
        cache.access(a, write=False)          # refresh a
        cache.access(c, write=False)          # evicts b
        assert cache.contains(a)
        assert not cache.contains(b)
        assert cache.contains(c)

    def test_eviction_counts(self):
        cache = tiny_cache(ways=2)
        for tag in range(3):
            cache.access(addr(0, tag), write=False)
        assert cache.stats.evictions == 1

    def test_dirty_eviction_writes_back(self):
        cache = tiny_cache(ways=2)
        cache.access(addr(0, 0), write=True)     # dirty
        cache.access(addr(0, 1), write=False)
        cache.access(addr(0, 2), write=False)    # evicts the dirty line
        assert cache.stats.writebacks == 1

    def test_different_sets_do_not_conflict(self):
        cache = tiny_cache(ways=2, sets=4)
        for set_index in range(4):
            cache.access(addr(set_index, 0), write=False)
        assert cache.stats.evictions == 0
        assert cache.resident_lines() == 4


class TestFlushOperations:
    def test_flush_removes_line(self):
        cache = tiny_cache()
        cache.access(0, write=False)
        assert cache.flush(0) is False        # clean: no writeback
        assert not cache.contains(0)

    def test_flush_dirty_reports_writeback(self):
        cache = tiny_cache()
        cache.access(0, write=True)
        assert cache.flush(0) is True

    def test_flush_absent_line_is_noop(self):
        assert tiny_cache().flush(0) is False

    def test_clwb_keeps_line_resident(self):
        cache = tiny_cache()
        cache.access(0, write=True)
        assert cache.writeback(0) is True
        assert cache.contains(0)
        assert not cache.lookup(0).state.is_dirty

    def test_invalidate_drops_without_writeback(self):
        cache = tiny_cache()
        cache.access(0, write=True)
        cache.invalidate(0)
        assert not cache.contains(0)
        assert cache.stats.writebacks == 0


class TestInstall:
    def test_install_invalid_rejected(self):
        with pytest.raises(CacheError):
            tiny_cache().install(0, MesiState.INVALID)

    def test_install_respects_ways(self):
        cache = tiny_cache(ways=2)
        for tag in range(5):
            cache.install(addr(0, tag), MesiState.EXCLUSIVE)
        cache.check_invariants()
        assert cache.resident_lines() == 2


class TestInvariantsProperty:
    @settings(max_examples=50, deadline=None)
    @given(st.lists(st.tuples(st.integers(min_value=0, max_value=4096),
                              st.booleans(),
                              st.sampled_from(["access", "flush", "clwb",
                                               "invalidate"])),
                    max_size=200))
    def test_invariants_hold_under_any_trace(self, trace):
        cache = tiny_cache()
        for address, write, op in trace:
            if op == "access":
                cache.access(address, write=write)
            elif op == "flush":
                cache.flush(address)
            elif op == "clwb":
                cache.writeback(address)
            else:
                cache.invalidate(address)
        cache.check_invariants()

    @settings(max_examples=30, deadline=None)
    @given(st.lists(st.integers(min_value=0, max_value=64), min_size=1,
                    max_size=300))
    def test_occupancy_never_exceeds_capacity(self, line_indices):
        cache = tiny_cache()
        for index in line_indices:
            cache.access(index * 64, write=False)
        assert cache.resident_lines() <= 8     # 2 ways x 4 sets
