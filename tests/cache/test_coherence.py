"""MESI transitions and the RFO traffic accounting."""

import pytest

from repro.errors import CacheError
from repro.cache import MesiState, MesiCoherence
from repro.cache.cacheline import CacheLine, line_address


class TestMesiState:
    def test_only_modified_is_dirty(self):
        assert MesiState.MODIFIED.is_dirty
        for state in (MesiState.EXCLUSIVE, MesiState.SHARED,
                      MesiState.INVALID):
            assert not state.is_dirty

    def test_silent_write_states(self):
        assert MesiState.MODIFIED.can_write_silently
        assert MesiState.EXCLUSIVE.can_write_silently
        assert not MesiState.SHARED.can_write_silently

    def test_validity(self):
        assert not MesiState.INVALID.is_valid
        assert MesiState.SHARED.is_valid


class TestCacheLine:
    def test_alignment_enforced(self):
        with pytest.raises(ValueError):
            CacheLine(address=70)

    def test_line_address_rounds_down(self):
        assert line_address(0) == 0
        assert line_address(63) == 0
        assert line_address(64) == 64
        assert line_address(130) == 128

    def test_negative_address_rejected(self):
        with pytest.raises(ValueError):
            line_address(-1)


class TestLoadTransitions:
    def test_miss_fills_exclusive(self):
        state, actions = MesiCoherence.on_load(MesiState.INVALID)
        assert state is MesiState.EXCLUSIVE
        assert actions == ("fill",)

    def test_hits_are_silent(self):
        for before in (MesiState.MODIFIED, MesiState.EXCLUSIVE,
                       MesiState.SHARED):
            state, actions = MesiCoherence.on_load(before)
            assert state is before
            assert actions == ()


class TestStoreTransitions:
    def test_miss_triggers_rfo(self):
        """The §4.2 behavior: 'cachelines are loaded into the cache for
        each store miss'."""
        state, actions = MesiCoherence.on_store(MesiState.INVALID)
        assert state is MesiState.MODIFIED
        assert actions == ("rfo",)

    def test_shared_upgrade_invalidates(self):
        state, actions = MesiCoherence.on_store(MesiState.SHARED)
        assert state is MesiState.MODIFIED
        assert actions == ("invalidate",)

    def test_exclusive_writes_silently(self):
        state, actions = MesiCoherence.on_store(MesiState.EXCLUSIVE)
        assert state is MesiState.MODIFIED
        assert actions == ()


class TestNtStoreTransitions:
    def test_nt_store_never_allocates(self):
        for before in MesiState:
            state, actions = MesiCoherence.on_nt_store(before)
            assert state is MesiState.INVALID
            assert "nt-write" in actions
            assert "rfo" not in actions

    def test_nt_store_on_dirty_copy_writes_back_first(self):
        _, actions = MesiCoherence.on_nt_store(MesiState.MODIFIED)
        assert actions == ("writeback", "nt-write")


class TestFlushTransitions:
    def test_clflush_dirty_writes_back(self):
        state, actions = MesiCoherence.on_clflush(MesiState.MODIFIED)
        assert state is MesiState.INVALID
        assert actions == ("writeback",)

    def test_clflush_clean_is_silent_drop(self):
        state, actions = MesiCoherence.on_clflush(MesiState.EXCLUSIVE)
        assert state is MesiState.INVALID
        assert actions == ()

    def test_clwb_keeps_line(self):
        """clwb vs clflush: the line stays resident (MEMO's st+wb probe)."""
        state, actions = MesiCoherence.on_clwb(MesiState.MODIFIED)
        assert state.is_valid
        assert actions == ("writeback",)

    def test_clwb_clean_is_noop(self):
        state, actions = MesiCoherence.on_clwb(MesiState.SHARED)
        assert state is MesiState.SHARED
        assert actions == ()


class TestEviction:
    def test_dirty_eviction_writes_back(self):
        _, actions = MesiCoherence.on_eviction(MesiState.MODIFIED)
        assert actions == ("writeback",)

    def test_clean_eviction_is_silent(self):
        _, actions = MesiCoherence.on_eviction(MesiState.SHARED)
        assert actions == ()

    def test_evicting_invalid_is_a_bug(self):
        with pytest.raises(CacheError):
            MesiCoherence.on_eviction(MesiState.INVALID)


class TestValidateTransition:
    def test_accepts_legal(self):
        MesiCoherence.validate_transition(MesiState.INVALID, "load",
                                          MesiState.EXCLUSIVE)

    def test_rejects_illegal(self):
        with pytest.raises(CacheError):
            MesiCoherence.validate_transition(MesiState.INVALID, "load",
                                              MesiState.MODIFIED)

    def test_rejects_unknown_event(self):
        with pytest.raises(CacheError):
            MesiCoherence.validate_transition(MesiState.INVALID, "warp",
                                              MesiState.MODIFIED)
