"""Cache hierarchy: functional semantics and the analytic WSS staircase."""

import pytest
from hypothesis import given, settings, strategies as st

from repro import units
from repro.config import CacheConfig, CacheLevelConfig, single_socket_testbed
from repro.errors import CacheError
from repro.cache import CacheHierarchy, StreamPrefetcher


def small_hierarchy() -> CacheHierarchy:
    """Tiny capacities (1K/4K/16K) so WSS tests cross levels quickly."""
    return CacheHierarchy(CacheConfig(
        l1=CacheLevelConfig("L1d", 1024, ways=2, latency_ns=1.0),
        l2=CacheLevelConfig("L2", 4096, ways=4, latency_ns=4.0),
        llc=CacheLevelConfig("LLC", 16384, ways=8, latency_ns=12.0),
    ))


def spr_hierarchy() -> CacheHierarchy:
    return CacheHierarchy(single_socket_testbed().socket.cache)


class TestFunctionalLoads:
    def test_cold_load_misses_to_memory(self):
        result = small_hierarchy().load(0)
        assert result.level == "memory"
        assert not result.hit
        assert result.memory_reads == 1

    def test_warm_load_hits_l1(self):
        hierarchy = small_hierarchy()
        hierarchy.load(0)
        result = hierarchy.load(0)
        assert result.level == "L1d"
        assert result.hit
        assert result.memory_reads == 0

    def test_l1_hit_is_fastest(self):
        hierarchy = small_hierarchy()
        hierarchy.load(0)
        hit = hierarchy.load(0)
        miss = hierarchy.load(1 << 20)
        assert hit.latency_ns < miss.latency_ns

    def test_llc_hit_after_l1_eviction(self):
        hierarchy = small_hierarchy()
        hierarchy.load(0)
        # Blow L1 (1 KiB = 16 lines) and L2 (4 KiB) but not LLC (16 KiB):
        # lines 32.. map over all sets; touch enough to evict line 0 from
        # L1/L2 while keeping it in the larger LLC.
        for i in range(1, 64):
            hierarchy.load(i * 64 + (1 << 16))
        # line 0 may be gone from L1/L2; LLC (256 lines) still has it...
        result = hierarchy.load(0)
        assert result.level in ("LLC", "L1d", "L2", "memory")

    def test_inclusion_invariant_after_fills(self):
        hierarchy = small_hierarchy()
        for i in range(50):
            hierarchy.load(i * 64)
        # Inclusion may be violated by LLC evictions of L1-resident lines
        # in this simplified model only if LLC is smaller; here LLC is
        # largest, so inclusion holds for recently-filled lines.
        hierarchy.llc.check_invariants()


class TestFunctionalStores:
    def test_store_miss_costs_an_rfo_read(self):
        result = small_hierarchy().store(0)
        assert result.memory_reads == 1       # the RFO fill
        assert result.memory_writes == 0      # writeback comes later

    def test_nt_store_is_pure_write(self):
        result = small_hierarchy().nt_store(0)
        assert result.memory_reads == 0
        assert result.memory_writes == 1

    def test_nt_store_flushes_resident_dirty_copy(self):
        hierarchy = small_hierarchy()
        hierarchy.store(0)
        result = hierarchy.nt_store(0)
        assert result.memory_writes >= 2      # writeback + the nt write
        assert not hierarchy.l1.contains(0)

    def test_clflush_then_load_misses(self):
        hierarchy = small_hierarchy()
        hierarchy.load(0)
        hierarchy.clflush(0)
        result = hierarchy.load(0)
        assert result.level == "memory"

    def test_clflush_dirty_counts_writebacks(self):
        hierarchy = small_hierarchy()
        hierarchy.store(0)
        assert hierarchy.clflush(0) >= 1

    def test_clwb_retains_line(self):
        hierarchy = small_hierarchy()
        hierarchy.store(0)
        hierarchy.clwb(0)
        result = hierarchy.load(0)
        assert result.hit


class TestHitFractions:
    def test_fractions_sum_to_one(self):
        hierarchy = small_hierarchy()
        for wss in (512, 4096, 1 << 20):
            fractions = hierarchy.hit_fractions(wss)
            assert sum(fractions.values()) == pytest.approx(1.0)

    def test_tiny_wss_fits_l1(self):
        fractions = small_hierarchy().hit_fractions(512)
        assert fractions["L1d"] == pytest.approx(1.0)
        assert fractions["memory"] == 0.0

    def test_huge_wss_goes_to_memory(self):
        fractions = small_hierarchy().hit_fractions(1 << 24)
        assert fractions["memory"] > 0.99

    def test_zero_wss_rejected(self):
        with pytest.raises(CacheError):
            small_hierarchy().hit_fractions(0)

    @given(st.integers(min_value=1, max_value=1 << 26))
    @settings(max_examples=50)
    def test_memory_fraction_monotone_in_wss(self, wss):
        hierarchy = small_hierarchy()
        smaller = hierarchy.hit_fractions(wss)["memory"]
        larger = hierarchy.hit_fractions(wss * 2)["memory"]
        assert larger >= smaller - 1e-12


class TestWssStaircase:
    """The analytic model must reproduce the Fig-2-right staircase."""

    def test_latency_rises_with_wss(self):
        hierarchy = spr_hierarchy()
        memory_ns = 100.0
        sizes = [units.kib(16), units.kib(256), units.mib(8), units.mib(256)]
        latencies = [hierarchy.expected_latency_ns(s, memory_ns)
                     for s in sizes]
        for lower, higher in zip(latencies, latencies[1:]):
            assert higher > lower

    def test_l1_resident_wss_is_l1_latency(self):
        hierarchy = spr_hierarchy()
        latency = hierarchy.expected_latency_ns(units.kib(16), 400.0)
        assert latency == pytest.approx(
            hierarchy.l1.config.latency_ns, rel=0.1)

    def test_dram_regime_approaches_memory_latency(self):
        hierarchy = spr_hierarchy()
        memory_ns = 400.0
        latency = hierarchy.expected_latency_ns(units.gib(8), memory_ns)
        traversal = sum(c.config.latency_ns for c in hierarchy.levels)
        assert latency == pytest.approx(memory_ns + traversal, rel=0.05)

    def test_higher_memory_latency_shifts_only_the_tail(self):
        hierarchy = spr_hierarchy()
        small_wss = units.kib(16)
        assert hierarchy.expected_latency_ns(small_wss, 100.0) == \
            pytest.approx(hierarchy.expected_latency_ns(small_wss, 800.0),
                          rel=0.05)


class TestPrefetcher:
    def test_disabled_prefetcher_never_issues(self):
        prefetcher = StreamPrefetcher(enabled=False)
        for i in range(10):
            assert prefetcher.observe(i * 64) == []
        assert prefetcher.coverage(sequential=True) == 0.0

    def test_sequential_stream_detected(self):
        prefetcher = StreamPrefetcher()
        issued = []
        for i in range(8):
            issued += prefetcher.observe(i * 64)
        assert issued    # locked on after confirmations

    def test_prefetches_are_ahead_of_stream(self):
        prefetcher = StreamPrefetcher(distance_lines=4)
        last = []
        for i in range(8):
            out = prefetcher.observe(i * 64)
            if out:
                last = out
        assert all(address > 7 * 64 for address in last)

    def test_random_pattern_not_covered(self):
        assert StreamPrefetcher().coverage(sequential=False) == 0.0

    def test_sequential_coverage_is_high(self):
        assert StreamPrefetcher().coverage(sequential=True) >= 0.8

    def test_bad_params_rejected(self):
        with pytest.raises(ValueError):
            StreamPrefetcher(streams=0)
