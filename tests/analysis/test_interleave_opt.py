"""Bandwidth-matched interleave recommendation (§6)."""

import pytest

from repro import build_system, combined_testbed
from repro.analysis.interleave_opt import bandwidth_matched_fraction
from repro.apps.dlrm import DlrmInferenceStudy
from repro.errors import WorkloadError
from repro.mem import AccessPattern


@pytest.fixture(scope="module")
def system():
    return build_system(combined_testbed())


class TestRecommendation:
    def test_fraction_matches_bandwidth_shares(self, system):
        rec = bandwidth_matched_fraction(
            system, pattern=AccessPattern.SEQUENTIAL,
            block_bytes=1 << 20, streams=8)
        expected = rec.cxl_bandwidth / (rec.cxl_bandwidth
                                        + rec.dram_bandwidth)
        assert rec.cxl_fraction == pytest.approx(expected)

    def test_small_fraction_for_l8_plus_single_channel_cxl(self, system):
        """Eight DDR5 channels dwarf one DDR4 channel: f* is small."""
        rec = bandwidth_matched_fraction(
            system, pattern=AccessPattern.SEQUENTIAL,
            block_bytes=1 << 20, streams=8)
        assert 0.02 < rec.cxl_fraction < 0.20

    def test_latency_bound_workload_gets_zero(self, system):
        """§5.1: interleaving never helps Redis — recommend all-DRAM."""
        rec = bandwidth_matched_fraction(
            system, pattern=AccessPattern.RANDOM_BLOCK, block_bytes=1024,
            streams=1, bandwidth_bound=False)
        assert rec.cxl_fraction == 0.0
        assert rec.dram_to_cxl_ratio == (1, 0)

    def test_ratio_approximates_fraction(self, system):
        rec = bandwidth_matched_fraction(
            system, pattern=AccessPattern.SEQUENTIAL,
            block_bytes=1 << 20, streams=8)
        dram, cxl = rec.dram_to_cxl_ratio
        assert cxl / (dram + cxl) == pytest.approx(rec.cxl_fraction,
                                                   abs=0.01)

    def test_zero_streams_rejected(self, system):
        with pytest.raises(WorkloadError):
            bandwidth_matched_fraction(
                system, pattern=AccessPattern.SEQUENTIAL,
                block_bytes=1 << 20, streams=0)


class TestAgainstDlrmSnc:
    """The recommendation should be near-optimal for the Fig-9 regime."""

    def test_matched_fraction_beats_neighbors_under_snc(self):
        from repro.apps.dlrm.inference import snc_memory_config
        from repro.cpu.system import System

        study = DlrmInferenceStudy(combined_testbed())
        snc_system = System(snc_memory_config(combined_testbed()))
        rec = bandwidth_matched_fraction(
            snc_system, pattern=AccessPattern.RANDOM_BLOCK,
            block_bytes=256, streams=32)
        # Under SNC (2 channels) the CXL share is much larger than under
        # the full 8-channel socket.
        assert rec.cxl_fraction > 0.15

        at_matched = study.kernel(round(rec.cxl_fraction, 3),
                                  snc=True).throughput(32)
        at_none = study.kernel("local", snc=True).throughput(32)
        at_heavy = study.kernel(0.8, snc=True).throughput(32)
        assert at_matched > at_none       # interleaving helps when bound
        assert at_matched > at_heavy      # but too much CXL hurts
