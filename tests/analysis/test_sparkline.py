"""Sparkline rendering."""

import pytest

from repro.analysis.series import Series
from repro.analysis.sparkline import BARS, series_sparklines, sparkline
from repro.errors import ExperimentError


class TestSparkline:
    def test_monotone_series_uses_rising_bars(self):
        text = sparkline([1.0, 2.0, 3.0, 4.0])
        heights = [BARS.index(ch) for ch in text]
        assert heights == sorted(heights)
        assert heights[0] == 0
        assert heights[-1] == len(BARS) - 1

    def test_flat_series_is_mid_height(self):
        text = sparkline([5.0, 5.0, 5.0])
        assert len(set(text)) == 1

    def test_pinned_scale(self):
        # With lo=0 a small value renders low even if it's the minimum.
        text = sparkline([8.0, 10.0], lo=0.0, hi=10.0)
        assert BARS.index(text[0]) >= 5
        assert text[1] == BARS[-1]

    def test_values_clamped_to_scale(self):
        text = sparkline([-5.0, 50.0], lo=0.0, hi=10.0)
        assert text[0] == BARS[0]
        assert text[1] == BARS[-1]

    def test_empty_rejected(self):
        with pytest.raises(ExperimentError):
            sparkline([])

    def test_bad_scale_rejected(self):
        with pytest.raises(ExperimentError):
            sparkline([1.0], lo=5.0, hi=1.0)

    def test_one_bar_per_point(self):
        assert len(sparkline(list(range(17)))) == 17


class TestSeriesSparklines:
    def test_shared_scale_across_series(self):
        big = Series("big", x=[1, 2], y=[10.0, 100.0])
        small = Series("small", x=[1, 2], y=[1.0, 2.0])
        text = series_sparklines([big, small])
        lines = text.splitlines()
        assert lines[0].lstrip().startswith("big")
        # The small series renders at the bottom of the shared scale.
        small_bars = lines[1].split()[1]
        assert all(BARS.index(ch) <= 1 for ch in small_bars)

    def test_labels_and_max(self):
        series = Series("CXL", x=[1, 2, 3], y=[5.0, 20.7, 9.3])
        text = series_sparklines([series])
        assert "CXL" in text
        assert "max=20.7" in text

    def test_empty_rejected(self):
        with pytest.raises(ExperimentError):
            series_sparklines([])

    def test_report_render_includes_sparklines(self):
        from repro.memo import BenchReport
        report = BenchReport(title="t")
        report.add_series("p", Series("s", x=[1, 2, 3],
                                      y=[1.0, 2.0, 3.0]))
        assert any(ch in report.render() for ch in BARS)
        assert not any(ch in report.render(sparklines=False)
                       for ch in BARS)
