"""The §6 best-practices advisor and §6.1 classifier."""

import pytest

from repro.analysis.guidelines import (
    Advice,
    LatencyClass,
    WorkloadProfile,
    advise,
    classify,
    latency_bound_verdict,
)
from repro.analysis.series import Series
from repro.errors import WorkloadError


def redis_profile() -> WorkloadProfile:
    return WorkloadProfile("redis", LatencyClass.MICROSECONDS,
                           read_fraction=0.5, writer_threads=1)


def microservice_profile() -> WorkloadProfile:
    return WorkloadProfile("social-network", LatencyClass.MILLISECONDS,
                           read_fraction=0.85,
                           has_intermediate_compute=True)


def tiering_daemon_profile() -> WorkloadProfile:
    return WorkloadProfile("tier-daemon", LatencyClass.MILLISECONDS,
                           read_fraction=0.5,
                           bulk_transfer_bytes=2 * 1024 * 1024,
                           writer_threads=8, short_term_reuse=False)


def rules(profile) -> set[str]:
    return {advice.rule for advice in advise(profile)}


class TestAdvise:
    def test_us_latency_app_warned_off_pure_cxl(self):
        """§6: 'Avoid running application with us-level latency entirely
        on the CXL memory.'"""
        assert "avoid-pure-cxl" in rules(redis_profile())

    def test_microservice_recommended_for_offload(self):
        """§6: 'Microservice can be a good candidate for CXL memory
        offloading.'"""
        advice = rules(microservice_profile())
        assert "offload-to-cxl" in advice
        assert "avoid-pure-cxl" not in advice

    def test_tiering_daemon_gets_movement_guidance(self):
        """§6: nt-store/movdir64B + DSA + writer limits for bulk movers."""
        advice = rules(tiering_daemon_profile())
        assert {"nt-store", "use-dsa", "limit-writers"} <= advice

    def test_interleaving_always_recommended(self):
        """§6: interleaving applies across the board (baseline policy)."""
        for profile in (redis_profile(), microservice_profile(),
                        tiering_daemon_profile()):
            assert "interleave" in rules(profile)

    def test_few_writers_no_warning(self):
        assert "limit-writers" not in rules(redis_profile())

    def test_read_heavy_flagged_favorable(self):
        assert "read-heavy-target" in rules(microservice_profile())

    def test_advice_text_cites_sections(self):
        for advice in advise(tiering_daemon_profile()):
            assert "§" in advice.source
            assert str(advice).startswith(f"[{advice.rule}]")

    def test_bad_profile_rejected(self):
        with pytest.raises(WorkloadError):
            WorkloadProfile("x", LatencyClass.MICROSECONDS,
                            read_fraction=1.5)


class TestClassifier:
    def test_sublinear_curve_is_bandwidth_bound(self):
        curve = Series("snc", x=[8, 16, 32], y=[800.0, 1600.0, 1900.0])
        assert classify(curve) == "bandwidth-bound"

    def test_linear_curve_is_not_bound(self):
        curve = Series("dram", x=[8, 16, 32], y=[800.0, 1600.0, 3200.0])
        assert classify(curve) == "not-bound"

    def test_too_few_points_rejected(self):
        with pytest.raises(WorkloadError):
            classify(Series("s", x=[1, 2], y=[1.0, 2.0]))

    def test_latency_bound_verdict(self):
        """§6.1: Redis is latency-bound — even interleaved CXL depresses
        throughput at every thread count."""
        dram = Series("dram", x=[1, 2], y=[100.0, 200.0])
        cxl = Series("cxl", x=[1, 2], y=[70.0, 140.0])
        assert latency_bound_verdict(dram, cxl)
        close = Series("cxl", x=[1, 2], y=[98.0, 196.0])
        assert not latency_bound_verdict(dram, close)

    def test_verdict_requires_shared_axis(self):
        with pytest.raises(WorkloadError):
            latency_bound_verdict(Series("a", x=[1], y=[1.0]),
                                  Series("b", x=[2], y=[1.0]))

    def test_dlrm_snc_curve_classifies_bandwidth_bound(self):
        """End-to-end: the Fig-9 SNC curve is §6.1 bandwidth-bound."""
        from repro import combined_testbed
        from repro.apps.dlrm import DlrmInferenceStudy
        study = DlrmInferenceStudy(combined_testbed())
        snc = study.curve("local", [8, 16, 32], snc=True)
        assert classify(snc) == "bandwidth-bound"
        dram = study.curve("local", [8, 16, 32])
        assert classify(dram) == "not-bound"
