"""Series containers, table rendering, shape checks."""

import pytest

from repro.analysis import (
    Series,
    ShapeCheck,
    check_monotone,
    check_peak_near,
    check_ratio,
    format_table,
    series_table,
)
from repro.analysis.compare import check_ordering
from repro.errors import ExperimentError


class TestSeries:
    def test_append_and_len(self):
        series = Series("s")
        series.append(1.0, 10.0)
        series.append(2.0, 20.0)
        assert len(series) == 2

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ExperimentError):
            Series("s", x=[1.0], y=[])

    def test_y_at(self):
        series = Series("s", x=[1.0, 2.0], y=[10.0, 20.0])
        assert series.y_at(2.0) == 20.0
        with pytest.raises(ExperimentError):
            series.y_at(3.0)

    def test_peak(self):
        series = Series("s", x=[1.0, 2.0, 3.0], y=[5.0, 9.0, 7.0])
        assert series.peak == (2.0, 9.0)
        assert series.max_y == 9.0

    def test_peak_of_empty_rejected(self):
        with pytest.raises(ExperimentError):
            _ = Series("s").peak

    def test_scaled_and_normalized(self):
        series = Series("s", x=[1.0], y=[10.0])
        assert series.scaled(2.0).y == [20.0]
        assert series.normalized_to(5.0).y == [2.0]
        with pytest.raises(ExperimentError):
            series.normalized_to(0.0)

    def test_monotone_with_tolerance(self):
        wobbling = Series("s", x=[1, 2, 3], y=[10.0, 9.7, 11.0])
        assert not wobbling.is_monotone_increasing()
        assert wobbling.is_monotone_increasing(tolerance=0.05)


class TestTables:
    def test_format_table_alignment(self):
        text = format_table(["a", "bb"], [["1", "2"], ["10", "20"]])
        lines = text.splitlines()
        assert len({len(line) for line in lines}) == 1   # equal widths

    def test_row_width_mismatch_rejected(self):
        with pytest.raises(ExperimentError):
            format_table(["a"], [["1", "2"]])

    def test_series_table(self):
        a = Series("A", x=[1.0, 2.0], y=[10.0, 20.0], x_label="threads")
        b = Series("B", x=[1.0, 2.0], y=[1.0, 2.0])
        text = series_table([a, b])
        assert "threads" in text
        assert "20.0" in text

    def test_series_table_requires_shared_axis(self):
        a = Series("A", x=[1.0], y=[1.0])
        b = Series("B", x=[2.0], y=[1.0])
        with pytest.raises(ExperimentError):
            series_table([a, b])

    def test_empty_series_list_rejected(self):
        with pytest.raises(ExperimentError):
            series_table([])


class TestShapeChecks:
    def test_ratio_pass_and_fail(self):
        assert check_ratio("c", 2.2, 1.0, 2.2, 0.1).passed
        assert not check_ratio("c", 3.0, 1.0, 2.2, 0.1).passed

    def test_ratio_zero_denominator(self):
        assert not check_ratio("c", 1.0, 0.0, 1.0, 0.1).passed

    def test_monotone(self):
        rising = Series("s", x=[1, 2], y=[1.0, 2.0])
        falling = Series("s", x=[1, 2], y=[2.0, 1.0])
        assert check_monotone("c", rising).passed
        assert not check_monotone("c", falling).passed

    def test_peak_near(self):
        series = Series("s", x=[1, 2, 3], y=[1.0, 5.0, 2.0])
        assert check_peak_near("c", series, expected_x=2, slack=0).passed
        assert not check_peak_near("c", series, expected_x=3,
                                   slack=0).passed

    def test_ordering(self):
        assert check_ordering("c", {"a": 1.0, "b": 2.0}).passed
        assert not check_ordering("c", {"a": 2.0, "b": 1.0}).passed

    def test_str_rendering(self):
        check = ShapeCheck("claim", True, "42")
        assert "[PASS]" in str(check)
        assert "[FAIL]" in str(ShapeCheck("claim", False, "42"))
