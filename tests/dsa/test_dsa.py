"""DSA model: descriptors, WQs, engines, and the Fig-4b trends."""

import pytest

from repro import build_system, combined_testbed
from repro.cpu import MemoryScheme
from repro.errors import DeviceError
from repro.dsa import (
    BatchDescriptor,
    Descriptor,
    DsaDevice,
    DsaOpcode,
    ProcessingEngine,
    SubmissionMode,
    WorkQueue,
)
from repro.dsa.descriptor import memmove

L8, CXL = MemoryScheme.DDR5_L8, MemoryScheme.CXL


@pytest.fixture(scope="module")
def system():
    return build_system(combined_testbed())


@pytest.fixture(scope="module")
def dsa(system):
    return DsaDevice(system)


class TestDescriptors:
    def test_memmove_accounting(self):
        descriptor = memmove(4096, L8, CXL)
        assert descriptor.reads_bytes == 4096
        assert descriptor.writes_bytes == 4096

    def test_fill_has_no_source(self):
        descriptor = Descriptor(DsaOpcode.MEMFILL, 4096, None, CXL)
        assert descriptor.reads_bytes == 0
        assert descriptor.writes_bytes == 4096

    def test_compare_writes_nothing(self):
        descriptor = Descriptor(DsaOpcode.COMPARE, 4096, L8, CXL)
        assert descriptor.writes_bytes == 0

    def test_memmove_requires_source(self):
        with pytest.raises(DeviceError):
            Descriptor(DsaOpcode.MEMMOVE, 4096, None, CXL)

    def test_zero_size_rejected(self):
        with pytest.raises(DeviceError):
            memmove(0, L8, CXL)

    def test_batch_totals(self):
        batch = BatchDescriptor(tuple(memmove(4096, L8, CXL)
                                      for _ in range(16)))
        assert batch.size == 16
        assert batch.total_bytes == 16 * 4096

    def test_empty_batch_rejected(self):
        with pytest.raises(DeviceError):
            BatchDescriptor(())


class TestWorkQueue:
    def test_fifo(self):
        wq = WorkQueue(depth=4)
        first = memmove(64, L8, CXL)
        second = memmove(128, L8, CXL)
        assert wq.submit(first)
        assert wq.submit(second)
        assert wq.pull() is first
        assert wq.pull() is second

    def test_full_queue_rejects(self):
        wq = WorkQueue(depth=1)
        assert wq.submit(memmove(64, L8, CXL))
        assert not wq.submit(memmove(64, L8, CXL))
        assert wq.rejected_total == 1

    def test_pull_empty_raises(self):
        with pytest.raises(DeviceError):
            WorkQueue(depth=1).pull()

    def test_zero_depth_rejected(self):
        with pytest.raises(DeviceError):
            WorkQueue(depth=0)


class TestEngine:
    def test_bigger_descriptors_take_longer(self, system):
        engine = ProcessingEngine(system)
        small = engine.service_ns(memmove(4096, L8, CXL))
        large = engine.service_ns(memmove(65536, L8, CXL))
        assert large > small

    def test_batch_service_is_sum(self, system):
        engine = ProcessingEngine(system)
        one = engine.service_ns(memmove(4096, L8, CXL))
        batch = engine.service_ns(BatchDescriptor(tuple(
            memmove(4096, L8, CXL) for _ in range(8))))
        assert batch == pytest.approx(8 * one)

    def test_c2d_rate_exceeds_d2c(self, system):
        """§4.3.1: C2D is faster 'due to lower write latency on DRAM'."""
        engine = ProcessingEngine(system)
        assert engine.move_rate(CXL, L8) > engine.move_rate(L8, CXL)

    def test_same_device_copy_is_slowest(self, system):
        engine = ProcessingEngine(system)
        c2c = engine.move_rate(CXL, CXL)
        assert c2c < engine.move_rate(L8, CXL)
        assert c2c < engine.move_rate(CXL, L8)

    def test_d2d_is_engine_bound(self, system):
        engine = ProcessingEngine(system)
        from repro.dsa.engine import ENGINE_PEAK_BW
        assert engine.move_rate(L8, L8) == pytest.approx(ENGINE_PEAK_BW)


class TestDeviceThroughput:
    def test_async_beats_sync(self, dsa):
        """Fig 4b: 'any level of asynchronicity or batching brings
        improvements'."""
        sync = dsa.copy_throughput(L8, CXL, mode=SubmissionMode.SYNC)
        async_ = dsa.copy_throughput(L8, CXL, mode=SubmissionMode.ASYNC)
        assert async_ > 1.5 * sync

    def test_batching_amortizes_offload(self, dsa):
        b1 = dsa.copy_throughput(L8, CXL, mode=SubmissionMode.SYNC,
                                 batch_size=1)
        b16 = dsa.copy_throughput(L8, CXL, mode=SubmissionMode.SYNC,
                                  batch_size=16)
        b128 = dsa.copy_throughput(L8, CXL, mode=SubmissionMode.SYNC,
                                   batch_size=128)
        assert b1 < b16 < b128

    def test_async_batched_hits_memory_ceiling(self, dsa, system):
        engine = ProcessingEngine(system)
        # Large transfers amortize the per-descriptor setup away.
        throughput = dsa.copy_throughput(L8, CXL,
                                         mode=SubmissionMode.ASYNC,
                                         batch_size=128,
                                         transfer_bytes=65536)
        ceiling = engine.move_rate(L8, CXL)
        assert throughput == pytest.approx(ceiling, rel=0.05)
        assert throughput <= ceiling

    def test_split_locations_beat_c2c(self, dsa):
        """Fig 4b: 'splitting the source and destination data locations
        yields higher throughput than exclusively using CXL'."""
        c2c = dsa.copy_throughput(CXL, CXL, mode=SubmissionMode.ASYNC,
                                  batch_size=128)
        d2c = dsa.copy_throughput(L8, CXL, mode=SubmissionMode.ASYNC,
                                  batch_size=128)
        c2d = dsa.copy_throughput(CXL, L8, mode=SubmissionMode.ASYNC,
                                  batch_size=128)
        assert d2c > c2c
        assert c2d > c2c

    def test_c2d_beats_d2c(self, dsa):
        d2c = dsa.copy_throughput(L8, CXL, mode=SubmissionMode.ASYNC,
                                  batch_size=128)
        c2d = dsa.copy_throughput(CXL, L8, mode=SubmissionMode.ASYNC,
                                  batch_size=128)
        assert c2d > d2c

    def test_sync_unbatched_comparable_to_cpu_memcpy(self, dsa, system):
        """Fig 4b: 'a non-batched synchronous offload to Intel DSA
        matches the throughput of non-offloaded memory copying'."""
        from repro.perfmodel import ThroughputModel
        memcpy = ThroughputModel(system).memcpy_bandwidth(L8, CXL).app_bandwidth
        sync = dsa.copy_throughput(L8, CXL, mode=SubmissionMode.SYNC,
                                   batch_size=1, transfer_bytes=8192)
        assert sync == pytest.approx(memcpy, rel=0.5)

    def test_copy_latency_includes_offload(self, dsa, system):
        from repro.dsa.device import OFFLOAD_LATENCY_NS
        assert dsa.copy_latency_ns(L8, CXL) > OFFLOAD_LATENCY_NS

    def test_zero_batch_rejected(self, dsa):
        with pytest.raises(DeviceError):
            dsa.copy_throughput(L8, CXL, mode=SubmissionMode.SYNC,
                                batch_size=0)
