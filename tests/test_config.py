"""Testbed configuration presets must match the paper's Table 1."""

import pytest

from repro import units
from repro.config import (
    CacheLevelConfig,
    CoreConfig,
    CxlDeviceConfig,
    DramConfig,
    LinkConfig,
    SocketConfig,
    SystemConfig,
    combined_testbed,
    dual_socket_testbed,
    single_socket_testbed,
)
from repro.errors import ConfigError


class TestTable1SingleSocket:
    def setup_method(self):
        self.system = single_socket_testbed()

    def test_core_count(self):
        assert self.system.socket.cores == 32
        assert self.system.socket.smt == 2
        assert self.system.socket.hardware_threads == 64

    def test_llc_size(self):
        assert self.system.socket.cache.llc.capacity_bytes == units.mib(60)

    def test_dram(self):
        dram = self.system.socket.dram
        assert dram.generation == "DDR5"
        assert dram.transfer_mt_s == 4800
        assert dram.channels == 8
        assert dram.capacity_bytes == units.gib(128)

    def test_cxl_device_present(self):
        cxl = self.system.cxl
        assert cxl.dram.generation == "DDR4"
        assert cxl.dram.transfer_mt_s == 2666
        assert cxl.dram.channels == 1
        assert cxl.dram.capacity_bytes == units.gib(16)

    def test_cxl_link_is_pcie5_x16(self):
        link = self.system.cxl.link
        assert units.to_gb_per_s(link.bandwidth_bytes_per_s) == pytest.approx(64.0)


class TestTable1DualSocket:
    def setup_method(self):
        self.system = dual_socket_testbed()

    def test_two_sockets(self):
        assert len(self.system.sockets) == 2
        for socket in self.system.sockets:
            assert socket.cores == 40
            assert socket.cache.llc.capacity_bytes == units.mib(105)

    def test_total_llc_is_210_mb(self):
        total = sum(s.cache.llc.capacity_bytes for s in self.system.sockets)
        assert total == units.mib(210)

    def test_upi_link_exists(self):
        assert self.system.upi is not None
        assert self.system.upi.name == "UPI"

    def test_no_cxl_device(self):
        with pytest.raises(ConfigError):
            _ = self.system.cxl


class TestCombinedTestbed:
    def test_has_all_three_memory_schemes(self):
        system = combined_testbed()
        assert len(system.sockets) == 2          # local + remote DDR5
        assert system.upi is not None
        assert system.cxl.dram.channels == 1     # CXL single channel


class TestDramConfig:
    def test_peak_bandwidth(self):
        dram = single_socket_testbed().socket.dram
        assert units.to_gb_per_s(dram.peak_bandwidth) == pytest.approx(307.2)
        assert units.to_gb_per_s(dram.per_channel_peak) == pytest.approx(38.4)

    def test_with_channels_scales_capacity(self):
        dram = single_socket_testbed().socket.dram
        one = dram.with_channels(1)
        assert one.channels == 1
        assert one.capacity_bytes == dram.capacity_bytes // 8

    def test_rejects_zero_channels(self):
        with pytest.raises(ConfigError):
            DramConfig("DDR5", 4800, 0, units.gib(1), 50.0)

    def test_rejects_bad_efficiency_ordering(self):
        with pytest.raises(ConfigError):
            DramConfig("DDR5", 4800, 1, units.gib(1), 50.0,
                       sequential_efficiency=0.3, random_efficiency=0.6)


class TestSncMode:
    def test_snc_node_slices_resources(self):
        socket = single_socket_testbed().socket
        node = socket.snc_node()
        assert node.cores == 8              # 32 / 4 chiplets
        assert node.dram.channels == 2      # 8 / 4 (Fig 9: two channels)
        assert node.cache.llc.capacity_bytes == socket.cache.llc.capacity_bytes // 4
        assert node.snc_clusters == 1

    def test_snc_requires_divisibility(self):
        socket = single_socket_testbed().socket
        with pytest.raises(ConfigError):
            SocketConfig(name="bad", cores=30, smt=2, core=socket.core,
                         cache=socket.cache, dram=socket.dram,
                         snc_clusters=4)


class TestCxlDeviceConfig:
    def test_asic_ablation_removes_fpga_penalty(self):
        fpga = single_socket_testbed().cxl
        asic = fpga.as_asic()
        assert asic.fpga_penalty_ns == 0.0
        assert asic.device_latency_ns < fpga.device_latency_ns

    def test_device_latency_composition(self):
        cxl = single_socket_testbed().cxl
        expected = cxl.controller_ns + cxl.fpga_penalty_ns + cxl.dram.access_ns
        assert cxl.device_latency_ns == expected

    def test_rejects_empty_write_buffer(self):
        cxl = single_socket_testbed().cxl
        with pytest.raises(ConfigError):
            CxlDeviceConfig(dram=cxl.dram, link=cxl.link,
                            write_buffer_entries=0)


class TestValidation:
    def test_cache_level_geometry_must_divide(self):
        with pytest.raises(ConfigError):
            CacheLevelConfig("L1", capacity_bytes=1000, ways=3, latency_ns=1.0)

    def test_multi_socket_requires_upi(self):
        socket = single_socket_testbed().socket
        with pytest.raises(ConfigError):
            SystemConfig(name="bad", sockets=(socket, socket), upi=None)

    def test_link_rejects_negative_latency(self):
        with pytest.raises(ConfigError):
            LinkConfig("bad", bandwidth_bytes_per_s=1.0, hop_latency_ns=-1.0)

    def test_core_cycle_time(self):
        core = CoreConfig(frequency_ghz=2.0)
        assert core.cycle_ns == 0.5
        assert core.issue_overhead_ns == pytest.approx(2.0)
